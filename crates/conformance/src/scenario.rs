//! Serializable conformance scenarios.
//!
//! A [`Scenario`] pins everything a differential run needs — the graph
//! generator and its seed, the algorithm, the accelerator configuration, an
//! optional fault schedule, and the engine/mode matrix to compare — in a
//! JSON form that round-trips bit-exactly. A scenario found by the fuzzer
//! can therefore be checked into `corpus/` and replayed byte-for-byte with
//! `scalagraph-sim replay`.
//!
//! JSON encoding notes: `u64::MAX` is not representable in JSON, so cycle
//! fields that mean "forever" (`Fault::until_cycle`, `HbmStall::cycles`)
//! encode it as `0` — a zero-length window or zero-length stall would be
//! meaningless, so the encoding is unambiguous.

use crate::json::{obj, parse, Json};
use scalagraph::fault::{Fault, FaultKind, FaultPlan, LinkDir};
use scalagraph::{Mapping, MemoryPreset, ScalaGraphConfig};
use scalagraph_graph::{generators, Csr, EdgeList, PackedCsr};
use scalagraph_mem::HbmConfig;

/// The graph generator family plus its size/seed parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Graph500 R-MAT (heavy-tailed).
    Rmat {
        /// Vertex count.
        vertices: usize,
        /// Edge count.
        edges: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Uniformly random endpoints.
    Uniform {
        /// Vertex count.
        vertices: usize,
        /// Edge count.
        edges: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Directed path `0 -> 1 -> ...`.
    Path {
        /// Vertex count.
        vertices: usize,
    },
    /// Vertex 0 points at every other vertex.
    Star {
        /// Vertex count.
        vertices: usize,
    },
    /// 2D grid with right/down edges.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Complete binary tree, parent-to-child edges.
    BinaryTree {
        /// Vertex count.
        vertices: usize,
    },
}

impl Family {
    /// Vertex count of the generated graph.
    pub fn vertices(&self) -> usize {
        match *self {
            Family::Rmat { vertices, .. }
            | Family::Uniform { vertices, .. }
            | Family::Path { vertices }
            | Family::Star { vertices }
            | Family::BinaryTree { vertices } => vertices,
            Family::Grid { rows, cols } => rows * cols,
        }
    }

    /// Nominal edge count (generator input, before symmetrization).
    pub fn edges(&self) -> usize {
        match *self {
            Family::Rmat { edges, .. } | Family::Uniform { edges, .. } => edges,
            Family::Path { vertices } | Family::BinaryTree { vertices } => {
                vertices.saturating_sub(1)
            }
            Family::Star { vertices } => vertices.saturating_sub(1),
            Family::Grid { rows, cols } => 2 * rows * cols,
        }
    }
}

/// Where the scenario's graph bytes come from.
///
/// `Generate` (the default, and what every corpus scenario uses) builds the
/// graph from the family generators. `PackedFile` opens a packed delta+varint
/// CSR container written by `scalagraph-sim graph pack`, validates it against
/// the family's declared shape, and decodes it — trading a regeneration for a
/// checksummed mmap read, which is what makes paper-scale graphs restart in
/// milliseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub enum GraphSource {
    /// Build from the family generators (pure function of the spec).
    #[default]
    Generate,
    /// Load a packed CSR container from this path.
    PackedFile {
        /// Filesystem path of the container.
        path: String,
    },
}

/// How the scenario builds its graph.
///
/// `GraphSpec` is `Hash + Eq` so it can key an immutable graph cache: two
/// equal specs build byte-identical CSRs (generation is a pure function of
/// the spec, and a packed file is validated against the declared family
/// shape), so one cached build can serve every scenario that shares it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GraphSpec {
    /// Generator family and parameters.
    pub family: Family,
    /// Mirror every edge (required for meaningful connected components).
    pub symmetrize: bool,
    /// Randomize edge weights in `1..=max_weight`; `0` keeps unit weights.
    pub max_weight: u32,
    /// Seed of the weight randomization.
    pub weight_seed: u64,
    /// Where the graph bytes come from (generate vs. packed file).
    pub source: GraphSource,
}

impl GraphSpec {
    /// Builds the CSR this spec describes.
    pub fn build(&self) -> Result<Csr, String> {
        let v = self.family.vertices();
        if v < 2 {
            return Err(format!("graph must have at least 2 vertices, got {v}"));
        }
        if let GraphSource::PackedFile { path } = &self.source {
            return Self::load_packed(path, v, self.max_weight > 0);
        }
        let edges = match self.family {
            Family::Rmat {
                vertices,
                edges,
                seed,
            } => generators::rmat(vertices, edges, seed),
            Family::Uniform {
                vertices,
                edges,
                seed,
            } => generators::uniform(vertices, edges, seed),
            Family::Path { vertices } => generators::path(vertices),
            Family::Star { vertices } => generators::star(vertices),
            Family::Grid { rows, cols } => generators::grid(rows, cols),
            Family::BinaryTree { vertices } => generators::binary_tree(vertices),
        };
        let mut list = EdgeList::new(v);
        for e in edges {
            list.push(e);
        }
        if self.symmetrize {
            list.symmetrize();
        }
        if self.max_weight > 0 {
            list.randomize_weights(self.max_weight, self.weight_seed);
        }
        Ok(Csr::from_edge_list(&list))
    }

    /// Opens a packed container, checks it against the declared family
    /// shape, and decodes it into an in-memory CSR. Every failure — missing
    /// file, corruption, shape mismatch — is a typed message the serve
    /// daemon forwards as a `malformed` wire error instead of panicking.
    fn load_packed(
        path: &str,
        expect_vertices: usize,
        expect_weighted: bool,
    ) -> Result<Csr, String> {
        let packed = PackedCsr::open(path).map_err(|e| format!("packed graph `{path}`: {e}"))?;
        if packed.num_vertices() != expect_vertices {
            return Err(format!(
                "packed graph `{path}` has {} vertices but the scenario family declares {}",
                packed.num_vertices(),
                expect_vertices
            ));
        }
        if packed.is_weighted() != expect_weighted {
            return Err(format!(
                "packed graph `{path}` is {} but the scenario expects {} (max_weight {})",
                if packed.is_weighted() {
                    "weighted"
                } else {
                    "unweighted"
                },
                if expect_weighted {
                    "weighted"
                } else {
                    "unweighted"
                },
                if expect_weighted { ">0" } else { "0" },
            ));
        }
        packed
            .to_csr()
            .map_err(|e| format!("packed graph `{path}`: {e}"))
    }

    fn to_json(&self) -> Json {
        let mut members: Vec<(&str, Json)> = Vec::new();
        let (name, rest): (&str, Vec<(&str, Json)>) = match self.family {
            Family::Rmat {
                vertices,
                edges,
                seed,
            } => (
                "rmat",
                vec![
                    ("vertices", Json::Int(vertices as u64)),
                    ("edges", Json::Int(edges as u64)),
                    ("seed", Json::Int(seed)),
                ],
            ),
            Family::Uniform {
                vertices,
                edges,
                seed,
            } => (
                "uniform",
                vec![
                    ("vertices", Json::Int(vertices as u64)),
                    ("edges", Json::Int(edges as u64)),
                    ("seed", Json::Int(seed)),
                ],
            ),
            Family::Path { vertices } => ("path", vec![("vertices", Json::Int(vertices as u64))]),
            Family::Star { vertices } => ("star", vec![("vertices", Json::Int(vertices as u64))]),
            Family::Grid { rows, cols } => (
                "grid",
                vec![
                    ("rows", Json::Int(rows as u64)),
                    ("cols", Json::Int(cols as u64)),
                ],
            ),
            Family::BinaryTree { vertices } => (
                "binary_tree",
                vec![("vertices", Json::Int(vertices as u64))],
            ),
        };
        members.push(("family", Json::Str(name.into())));
        members.extend(rest);
        members.push(("symmetrize", Json::Bool(self.symmetrize)));
        members.push(("max_weight", Json::Int(u64::from(self.max_weight))));
        members.push(("weight_seed", Json::Int(self.weight_seed)));
        // Emitted only for packed sources: corpus files (all `Generate`)
        // stay byte-identical to their pre-`GraphSource` form.
        if let GraphSource::PackedFile { path } = &self.source {
            members.push(("packed_path", Json::Str(path.clone())));
        }
        obj(members)
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let family = match v.req_str("family")? {
            "rmat" => Family::Rmat {
                vertices: v.req_u64("vertices")? as usize,
                edges: v.req_u64("edges")? as usize,
                seed: v.req_u64("seed")?,
            },
            "uniform" => Family::Uniform {
                vertices: v.req_u64("vertices")? as usize,
                edges: v.req_u64("edges")? as usize,
                seed: v.req_u64("seed")?,
            },
            "path" => Family::Path {
                vertices: v.req_u64("vertices")? as usize,
            },
            "star" => Family::Star {
                vertices: v.req_u64("vertices")? as usize,
            },
            "grid" => Family::Grid {
                rows: v.req_u64("rows")? as usize,
                cols: v.req_u64("cols")? as usize,
            },
            "binary_tree" => Family::BinaryTree {
                vertices: v.req_u64("vertices")? as usize,
            },
            other => return Err(format!("unknown graph family `{other}`")),
        };
        let source = match v.get("packed_path") {
            None => GraphSource::Generate,
            Some(p) => GraphSource::PackedFile {
                path: p
                    .as_str()
                    .ok_or("key `packed_path` must be a string")?
                    .to_string(),
            },
        };
        Ok(GraphSpec {
            family,
            symmetrize: v.opt_bool("symmetrize", false)?,
            max_weight: v.opt_u64("max_weight", 0)? as u32,
            weight_seed: v.opt_u64("weight_seed", 0)?,
            source,
        })
    }
}

/// Which algorithm the scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoSpec {
    /// Breadth-first search from `root`.
    Bfs {
        /// Source vertex.
        root: u32,
    },
    /// Single-source shortest paths from `root`.
    Sssp {
        /// Source vertex.
        root: u32,
    },
    /// Connected components (label propagation).
    Cc,
    /// PageRank with a fixed iteration schedule.
    PageRank {
        /// Iterations to run.
        iters: usize,
    },
    /// Widest path (maximum bottleneck capacity) from `root`.
    WidestPath {
        /// Source vertex.
        root: u32,
    },
}

impl AlgoSpec {
    /// Short name matching the CLI's `--algo` vocabulary.
    pub fn kind(&self) -> &'static str {
        match self {
            AlgoSpec::Bfs { .. } => "bfs",
            AlgoSpec::Sssp { .. } => "sssp",
            AlgoSpec::Cc => "cc",
            AlgoSpec::PageRank { .. } => "pagerank",
            AlgoSpec::WidestPath { .. } => "widest",
        }
    }

    fn to_json(self) -> Json {
        let mut members = vec![("kind", Json::Str(self.kind().into()))];
        match self {
            AlgoSpec::Bfs { root } | AlgoSpec::Sssp { root } | AlgoSpec::WidestPath { root } => {
                members.push(("root", Json::Int(u64::from(root))));
            }
            AlgoSpec::Cc => {}
            AlgoSpec::PageRank { iters } => members.push(("iters", Json::Int(iters as u64))),
        }
        obj(members)
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(match v.req_str("kind")? {
            "bfs" => AlgoSpec::Bfs {
                root: v.req_u64("root")? as u32,
            },
            "sssp" => AlgoSpec::Sssp {
                root: v.req_u64("root")? as u32,
            },
            "cc" => AlgoSpec::Cc,
            "pagerank" => AlgoSpec::PageRank {
                iters: v.req_u64("iters")? as usize,
            },
            "widest" => AlgoSpec::WidestPath {
                root: v.req_u64("root")? as u32,
            },
            other => return Err(format!("unknown algorithm `{other}`")),
        })
    }
}

/// Off-chip memory choice for a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemorySpec {
    /// The paper's U280 HBM2 stack.
    U280,
    /// Unlimited bandwidth (scalability-study mode).
    Unlimited,
    /// U280 geometry with an explicit access latency and jitter — the knob
    /// the timing-independence property tests sweep.
    Custom {
        /// Access latency in cycles.
        latency_cycles: u32,
        /// Uniform extra latency bound in cycles.
        jitter: u32,
    },
}

/// The accelerator configuration knobs a scenario pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigSpec {
    /// PE count (positive multiple of 32).
    pub pes: usize,
    /// Workload mapping: `"row"`, `"source"`, or `"destination"`.
    pub mapping: Mapping,
    /// Aggregation-pipeline registers per router.
    pub aggregation_registers: usize,
    /// Degree-aware scheduler width (1..=16).
    pub max_scheduled_vertices: usize,
    /// Inter-phase pipelining flag.
    pub inter_phase_pipelining: bool,
    /// Scratchpad capacity in vertices; `0` keeps the preset (no slicing
    /// for scenario-sized graphs).
    pub spd_capacity_vertices: usize,
    /// Off-chip memory model.
    pub memory: MemorySpec,
    /// Watchdog window in cycles (`0` disables).
    pub watchdog_stall_cycles: u64,
}

impl ConfigSpec {
    /// A 32-PE configuration with every knob at its preset default.
    pub fn small() -> Self {
        ConfigSpec {
            pes: 32,
            mapping: Mapping::RowOriented,
            aggregation_registers: 16,
            max_scheduled_vertices: 16,
            inter_phase_pipelining: true,
            spd_capacity_vertices: 0,
            memory: MemorySpec::U280,
            watchdog_stall_cycles: scalagraph::config::DEFAULT_WATCHDOG_STALL_CYCLES,
        }
    }

    /// Builds the engine configuration (without a fault plan).
    pub fn build(&self) -> Result<ScalaGraphConfig, String> {
        if self.pes == 0 || !self.pes.is_multiple_of(32) {
            return Err(format!(
                "pes must be a positive multiple of 32, got {}",
                self.pes
            ));
        }
        let mut cfg = ScalaGraphConfig::with_pes(self.pes);
        cfg.mapping = self.mapping;
        cfg.aggregation_registers = self.aggregation_registers;
        cfg.max_scheduled_vertices = self.max_scheduled_vertices;
        cfg.inter_phase_pipelining = self.inter_phase_pipelining;
        if self.spd_capacity_vertices > 0 {
            cfg.spd_capacity_vertices = self.spd_capacity_vertices;
        }
        cfg.memory = match self.memory {
            MemorySpec::U280 => MemoryPreset::U280,
            MemorySpec::Unlimited => MemoryPreset::Unlimited,
            MemorySpec::Custom {
                latency_cycles,
                jitter,
            } => {
                let mut hbm = HbmConfig::u280_stack(cfg.effective_clock_mhz() * 1e6);
                hbm.latency_cycles = latency_cycles;
                hbm.latency_jitter = jitter;
                MemoryPreset::Custom(hbm)
            }
        };
        cfg.watchdog_stall_cycles = self.watchdog_stall_cycles;
        cfg.validate().map_err(|e| e.to_string())?;
        Ok(cfg)
    }

    fn to_json(self) -> Json {
        let mapping = match self.mapping {
            Mapping::RowOriented => "row",
            Mapping::SourceOriented => "source",
            Mapping::DestinationOriented => "destination",
        };
        let memory = match self.memory {
            MemorySpec::U280 => obj(vec![("preset", Json::Str("u280".into()))]),
            MemorySpec::Unlimited => obj(vec![("preset", Json::Str("unlimited".into()))]),
            MemorySpec::Custom {
                latency_cycles,
                jitter,
            } => obj(vec![
                ("preset", Json::Str("custom".into())),
                ("latency_cycles", Json::Int(u64::from(latency_cycles))),
                ("jitter", Json::Int(u64::from(jitter))),
            ]),
        };
        obj(vec![
            ("pes", Json::Int(self.pes as u64)),
            ("mapping", Json::Str(mapping.into())),
            (
                "aggregation_registers",
                Json::Int(self.aggregation_registers as u64),
            ),
            (
                "max_scheduled_vertices",
                Json::Int(self.max_scheduled_vertices as u64),
            ),
            (
                "inter_phase_pipelining",
                Json::Bool(self.inter_phase_pipelining),
            ),
            (
                "spd_capacity_vertices",
                Json::Int(self.spd_capacity_vertices as u64),
            ),
            ("memory", memory),
            (
                "watchdog_stall_cycles",
                Json::Int(self.watchdog_stall_cycles),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let mapping = match v.req_str("mapping")? {
            "row" => Mapping::RowOriented,
            "source" => Mapping::SourceOriented,
            "destination" => Mapping::DestinationOriented,
            other => return Err(format!("unknown mapping `{other}`")),
        };
        let mem = v.req("memory")?;
        let memory = match mem.req_str("preset")? {
            "u280" => MemorySpec::U280,
            "unlimited" => MemorySpec::Unlimited,
            "custom" => MemorySpec::Custom {
                latency_cycles: mem.req_u64("latency_cycles")? as u32,
                jitter: mem.opt_u64("jitter", 0)? as u32,
            },
            other => return Err(format!("unknown memory preset `{other}`")),
        };
        Ok(ConfigSpec {
            pes: v.req_u64("pes")? as usize,
            mapping,
            aggregation_registers: v.req_u64("aggregation_registers")? as usize,
            max_scheduled_vertices: v.req_u64("max_scheduled_vertices")? as usize,
            inter_phase_pipelining: v.req_bool("inter_phase_pipelining")?,
            spd_capacity_vertices: v.opt_u64("spd_capacity_vertices", 0)? as usize,
            memory,
            watchdog_stall_cycles: v.opt_u64(
                "watchdog_stall_cycles",
                scalagraph::config::DEFAULT_WATCHDOG_STALL_CYCLES,
            )?,
        })
    }
}

/// One scheduled fault, JSON-encodable (see the module docs for the
/// `0 = forever` convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What the fault does.
    pub kind: FaultKindSpec,
    /// First active cycle.
    pub from: u64,
    /// First inactive cycle; `0` means permanent.
    pub until: u64,
}

/// JSON-encodable mirror of [`FaultKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FaultKindSpec {
    LinkDown {
        node: usize,
        dir: LinkDir,
    },
    LinkDrop {
        node: usize,
        dir: LinkDir,
        one_in: u32,
    },
    LinkDelay {
        node: usize,
        dir: LinkDir,
        cycles: u64,
    },
    /// `cycles == 0` pins the channel forever.
    HbmStall {
        tile: usize,
        channel: usize,
        cycles: u64,
    },
    CorruptPayload {
        node: usize,
        dir: LinkDir,
        one_in: u32,
        out_of_range: bool,
    },
}

fn dir_to_str(d: LinkDir) -> &'static str {
    match d {
        LinkDir::North => "north",
        LinkDir::South => "south",
        LinkDir::West => "west",
        LinkDir::East => "east",
    }
}

fn dir_from_str(s: &str) -> Result<LinkDir, String> {
    match s {
        "north" => Ok(LinkDir::North),
        "south" => Ok(LinkDir::South),
        "west" => Ok(LinkDir::West),
        "east" => Ok(LinkDir::East),
        other => Err(format!("unknown link direction `{other}`")),
    }
}

impl FaultSpec {
    /// The engine fault this spec encodes.
    pub fn to_fault(&self) -> Fault {
        let kind = match self.kind {
            FaultKindSpec::LinkDown { node, dir } => FaultKind::LinkDown { node, dir },
            FaultKindSpec::LinkDrop { node, dir, one_in } => {
                FaultKind::LinkDrop { node, dir, one_in }
            }
            FaultKindSpec::LinkDelay { node, dir, cycles } => {
                FaultKind::LinkDelay { node, dir, cycles }
            }
            FaultKindSpec::HbmStall {
                tile,
                channel,
                cycles,
            } => FaultKind::HbmStall {
                tile,
                channel,
                cycles: if cycles == 0 { u64::MAX } else { cycles },
            },
            FaultKindSpec::CorruptPayload {
                node,
                dir,
                one_in,
                out_of_range,
            } => FaultKind::CorruptPayload {
                node,
                dir,
                one_in,
                out_of_range,
            },
        };
        Fault::new(kind).window(
            self.from,
            if self.until == 0 {
                u64::MAX
            } else {
                self.until
            },
        )
    }

    /// Whether the fault can change final results (drops or corruption).
    /// Delays and stalls only perturb timing, which the engines must absorb
    /// without changing any result.
    pub fn is_result_preserving(&self) -> bool {
        !matches!(
            self.kind,
            FaultKindSpec::LinkDrop { .. } | FaultKindSpec::CorruptPayload { .. }
        )
    }

    fn to_json(self) -> Json {
        let mut members: Vec<(&str, Json)> = Vec::new();
        match self.kind {
            FaultKindSpec::LinkDown { node, dir } => {
                members.push(("kind", Json::Str("link_down".into())));
                members.push(("node", Json::Int(node as u64)));
                members.push(("dir", Json::Str(dir_to_str(dir).into())));
            }
            FaultKindSpec::LinkDrop { node, dir, one_in } => {
                members.push(("kind", Json::Str("link_drop".into())));
                members.push(("node", Json::Int(node as u64)));
                members.push(("dir", Json::Str(dir_to_str(dir).into())));
                members.push(("one_in", Json::Int(u64::from(one_in))));
            }
            FaultKindSpec::LinkDelay { node, dir, cycles } => {
                members.push(("kind", Json::Str("link_delay".into())));
                members.push(("node", Json::Int(node as u64)));
                members.push(("dir", Json::Str(dir_to_str(dir).into())));
                members.push(("cycles", Json::Int(cycles)));
            }
            FaultKindSpec::HbmStall {
                tile,
                channel,
                cycles,
            } => {
                members.push(("kind", Json::Str("hbm_stall".into())));
                members.push(("tile", Json::Int(tile as u64)));
                members.push(("channel", Json::Int(channel as u64)));
                members.push(("cycles", Json::Int(cycles)));
            }
            FaultKindSpec::CorruptPayload {
                node,
                dir,
                one_in,
                out_of_range,
            } => {
                members.push(("kind", Json::Str("corrupt_payload".into())));
                members.push(("node", Json::Int(node as u64)));
                members.push(("dir", Json::Str(dir_to_str(dir).into())));
                members.push(("one_in", Json::Int(u64::from(one_in))));
                members.push(("out_of_range", Json::Bool(out_of_range)));
            }
        }
        members.push(("from", Json::Int(self.from)));
        members.push(("until", Json::Int(self.until)));
        obj(members)
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let kind = match v.req_str("kind")? {
            "link_down" => FaultKindSpec::LinkDown {
                node: v.req_u64("node")? as usize,
                dir: dir_from_str(v.req_str("dir")?)?,
            },
            "link_drop" => FaultKindSpec::LinkDrop {
                node: v.req_u64("node")? as usize,
                dir: dir_from_str(v.req_str("dir")?)?,
                one_in: v.req_u64("one_in")? as u32,
            },
            "link_delay" => FaultKindSpec::LinkDelay {
                node: v.req_u64("node")? as usize,
                dir: dir_from_str(v.req_str("dir")?)?,
                cycles: v.req_u64("cycles")?,
            },
            "hbm_stall" => FaultKindSpec::HbmStall {
                tile: v.req_u64("tile")? as usize,
                channel: v.req_u64("channel")? as usize,
                cycles: v.req_u64("cycles")?,
            },
            "corrupt_payload" => FaultKindSpec::CorruptPayload {
                node: v.req_u64("node")? as usize,
                dir: dir_from_str(v.req_str("dir")?)?,
                one_in: v.req_u64("one_in")? as u32,
                out_of_range: v.req_bool("out_of_range")?,
            },
            other => return Err(format!("unknown fault kind `{other}`")),
        };
        Ok(FaultSpec {
            kind,
            from: v.req_u64("from")?,
            until: v.opt_u64("until", 0)?,
        })
    }
}

/// Which engine/mode/collector combinations the oracle compares, beyond the
/// always-run reference engine and stepped ScalaGraph simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeMatrix {
    /// Re-run ScalaGraph with idle-cycle fast-forward (must be
    /// bit-identical to stepped).
    pub fast_forward: bool,
    /// Re-run ScalaGraph with the event-driven stepping core (must be
    /// bit-identical to stepped).
    pub event_driven: bool,
    /// Re-run ScalaGraph with a telemetry recorder attached (must be
    /// bit-identical to stepped, and the summary must be consistent).
    pub recording: bool,
    /// Run the GraphDynS baseline (loop-exact vs the reference).
    pub graphdyns: bool,
    /// Run the Gunrock GPU model (exact vs the reference).
    pub gunrock: bool,
}

impl ModeMatrix {
    /// Everything on.
    pub fn full() -> Self {
        ModeMatrix {
            fast_forward: true,
            event_driven: true,
            recording: true,
            graphdyns: true,
            gunrock: true,
        }
    }

    /// Only the ScalaGraph execution modes.
    pub fn sim_only() -> Self {
        ModeMatrix {
            fast_forward: true,
            event_driven: true,
            recording: false,
            graphdyns: false,
            gunrock: false,
        }
    }

    /// Whether no comparison engine is enabled at all. The oracle rejects
    /// such scenarios up front: a run that compares nothing can only
    /// vacuously "pass", which silently hides the regression it was meant
    /// to pin.
    pub fn is_empty(self) -> bool {
        !(self.fast_forward
            || self.event_driven
            || self.recording
            || self.graphdyns
            || self.gunrock)
    }

    fn to_json(self) -> Json {
        obj(vec![
            ("fast_forward", Json::Bool(self.fast_forward)),
            ("event_driven", Json::Bool(self.event_driven)),
            ("recording", Json::Bool(self.recording)),
            ("graphdyns", Json::Bool(self.graphdyns)),
            ("gunrock", Json::Bool(self.gunrock)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(ModeMatrix {
            fast_forward: v.opt_bool("fast_forward", true)?,
            event_driven: v.opt_bool("event_driven", false)?,
            recording: v.opt_bool("recording", false)?,
            graphdyns: v.opt_bool("graphdyns", false)?,
            gunrock: v.opt_bool("gunrock", false)?,
        })
    }
}

/// A seeded schedule of graph mutation batches.
///
/// The schedule is *generative*, like [`GraphSpec`]: the concrete
/// [`MutationBatch`](scalagraph_graph::mutate::MutationBatch)es are a pure
/// function of this spec and the graph state they apply to, so a scenario
/// file fully determines the dynamic run and two equal specs replay the
/// same churn. Each of the `batches` batches draws `insert_edges` edge
/// insertions, `remove_edges` edge removals, `add_vertices` vertex
/// appends, and `isolate_vertices` vertex isolations from a per-batch
/// substream of `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MutationSpec {
    /// Number of mutation batches applied in sequence (≥ 1).
    pub batches: u32,
    /// Edge insertions drawn per batch.
    pub insert_edges: u32,
    /// Edge removals attempted per batch (draws may collide; a repeated
    /// draw is a no-op, so the realized count can be lower).
    pub remove_edges: u32,
    /// Vertices appended per batch.
    pub add_vertices: u32,
    /// Vertices isolated per batch.
    pub isolate_vertices: u32,
    /// Seed of the mutation stream.
    pub seed: u64,
}

impl MutationSpec {
    fn to_json(self) -> Json {
        obj(vec![
            ("batches", Json::Int(u64::from(self.batches))),
            ("insert_edges", Json::Int(u64::from(self.insert_edges))),
            ("remove_edges", Json::Int(u64::from(self.remove_edges))),
            ("add_vertices", Json::Int(u64::from(self.add_vertices))),
            (
                "isolate_vertices",
                Json::Int(u64::from(self.isolate_vertices)),
            ),
            ("seed", Json::Int(self.seed)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(MutationSpec {
            batches: v.req_u64("batches")? as u32,
            insert_edges: v.opt_u64("insert_edges", 0)? as u32,
            remove_edges: v.opt_u64("remove_edges", 0)? as u32,
            add_vertices: v.opt_u64("add_vertices", 0)? as u32,
            isolate_vertices: v.opt_u64("isolate_vertices", 0)? as u32,
            seed: v.opt_u64("seed", 0)?,
        })
    }
}

/// What the scenario is expected to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expectation {
    /// Every engine completes and agrees.
    Converge,
    /// The simulation wedges: every ScalaGraph mode must surface the same
    /// watchdog error, whose suspect names must contain this substring.
    Wedge {
        /// Substring the blamed unit's description must contain.
        suspect_contains: String,
    },
}

impl Expectation {
    fn to_json(&self) -> Json {
        match self {
            Expectation::Converge => obj(vec![("verdict", Json::Str("converge".into()))]),
            Expectation::Wedge { suspect_contains } => obj(vec![
                ("verdict", Json::Str("wedge".into())),
                ("suspect_contains", Json::Str(suspect_contains.clone())),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        match v.req_str("verdict")? {
            "converge" => Ok(Expectation::Converge),
            "wedge" => Ok(Expectation::Wedge {
                suspect_contains: v.req_str("suspect_contains")?.to_string(),
            }),
            other => Err(format!("unknown verdict `{other}`")),
        }
    }
}

/// A complete, replayable conformance scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable identifier (also the corpus file stem).
    pub name: String,
    /// Graph generator spec.
    pub graph: GraphSpec,
    /// Algorithm to run.
    pub algo: AlgoSpec,
    /// Accelerator configuration.
    pub config: ConfigSpec,
    /// Seed of the fault injector's probabilistic stream.
    pub fault_seed: u64,
    /// Scheduled faults; empty means no fault plan at all.
    pub faults: Vec<FaultSpec>,
    /// Engine/mode matrix to compare.
    pub modes: ModeMatrix,
    /// Expected outcome.
    pub expect: Expectation,
    /// Force (`Some(true)`) or suppress (`Some(false)`) strict comparison
    /// of iteration counts and frontier evolution against the reference.
    /// `None` selects automatically: strict unless inter-phase pipelining
    /// actually engaged (a pipelined Apply may legally observe next-wave
    /// updates early and converge in fewer iterations).
    pub strict_frontier: Option<bool>,
    /// Test-only hook: perturb the stepped observation so the oracle
    /// reports a mismatch on an otherwise-healthy scenario. Exists so the
    /// shrinker can be exercised end to end without a real engine bug.
    #[doc(hidden)]
    pub synthetic_bug: bool,
    /// Seeded mutation schedule; `None` runs the graph as a static
    /// snapshot (the pre-dynamic behavior, byte for byte).
    pub mutations: Option<MutationSpec>,
}

impl Scenario {
    /// Checks that the scenario is runnable without building its graph:
    /// the graph spec is non-degenerate, rooted algorithms stay inside the
    /// vertex range, PageRank has at least one iteration, and the
    /// accelerator configuration passes
    /// [`ScalaGraphConfig::validate`](scalagraph::ScalaGraphConfig::validate).
    ///
    /// Admission layers (the serve daemon, batch front ends) call this to
    /// refuse unusable work with a typed error *before* spending queue
    /// capacity on it; the runner re-derives the same checks when it
    /// actually executes.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let vertices = self.graph.family.vertices();
        if vertices < 2 {
            return Err(format!(
                "graph must have at least 2 vertices, got {vertices}"
            ));
        }
        match self.algo {
            AlgoSpec::Bfs { root } | AlgoSpec::Sssp { root } | AlgoSpec::WidestPath { root } => {
                if root as usize >= vertices {
                    return Err(format!("root {root} out of range for {vertices} vertices"));
                }
            }
            AlgoSpec::PageRank { iters } => {
                if iters == 0 {
                    return Err("pagerank needs at least 1 iteration".into());
                }
            }
            AlgoSpec::Cc => {}
        }
        if let Some(m) = &self.mutations {
            if m.batches == 0 {
                return Err("mutation schedule needs at least 1 batch".into());
            }
            if matches!(self.expect, Expectation::Wedge { .. }) {
                return Err(
                    "mutation schedules require a converge expectation (wedge scenarios \
                     exercise fault plans, not graph churn)"
                        .into(),
                );
            }
        }
        self.config.build().map(|_| ())
    }

    /// The fault plan this scenario attaches, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        if self.faults.is_empty() {
            return None;
        }
        let mut plan = FaultPlan::seeded(self.fault_seed);
        for f in &self.faults {
            plan = plan.with(f.to_fault());
        }
        Some(plan)
    }

    /// Serializes to the canonical pretty-printed corpus form.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// A stable 64-bit signature of the scenario's *behavior*: FNV-1a over
    /// the canonical JSON with the (purely cosmetic) name cleared. Two
    /// scenarios with the same fingerprint run the same graph, algorithm,
    /// configuration, and fault schedule, so a batch runtime can use it to
    /// quarantine repeat offenders even when job names differ.
    pub fn fingerprint(&self) -> u64 {
        let mut anonymous = self.clone();
        anonymous.name.clear();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in anonymous.to_json_string().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// The JSON document for this scenario.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("name", Json::Str(self.name.clone())),
            ("graph", self.graph.to_json()),
            ("algo", self.algo.to_json()),
            ("config", self.config.to_json()),
            ("fault_seed", Json::Int(self.fault_seed)),
            (
                "faults",
                Json::Arr(self.faults.iter().map(|f| f.to_json()).collect()),
            ),
            ("modes", self.modes.to_json()),
            ("expect", self.expect.to_json()),
        ];
        // Emitted only when present: pre-dynamic corpus files stay
        // byte-identical.
        if let Some(m) = &self.mutations {
            members.push(("mutations", m.to_json()));
        }
        if let Some(strict) = self.strict_frontier {
            members.push(("strict_frontier", Json::Bool(strict)));
        }
        if self.synthetic_bug {
            members.push(("synthetic_bug", Json::Bool(true)));
        }
        obj(members)
    }

    /// Parses a scenario from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        Self::from_json(&parse(text)?)
    }

    /// Parses a scenario from a JSON document.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let faults = match v.get("faults") {
            None => Vec::new(),
            Some(arr) => arr
                .as_array()
                .ok_or("key `faults` must be an array")?
                .iter()
                .map(FaultSpec::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let strict_frontier = match v.get("strict_frontier") {
            None => None,
            Some(b) => Some(b.as_bool().ok_or("key `strict_frontier` must be a bool")?),
        };
        Ok(Scenario {
            name: v.req_str("name")?.to_string(),
            graph: GraphSpec::from_json(v.req("graph")?)?,
            algo: AlgoSpec::from_json(v.req("algo")?)?,
            config: ConfigSpec::from_json(v.req("config")?)?,
            fault_seed: v.opt_u64("fault_seed", 0)?,
            faults,
            modes: ModeMatrix::from_json(v.req("modes")?)?,
            expect: Expectation::from_json(v.req("expect")?)?,
            strict_frontier,
            synthetic_bug: v.opt_bool("synthetic_bug", false)?,
            mutations: match v.get("mutations") {
                None => None,
                Some(m) => Some(MutationSpec::from_json(m)?),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            name: "sample".into(),
            graph: GraphSpec {
                family: Family::Rmat {
                    vertices: 64,
                    edges: 256,
                    seed: 7,
                },
                symmetrize: true,
                max_weight: 255,
                weight_seed: 3,
                source: GraphSource::Generate,
            },
            algo: AlgoSpec::Sssp { root: 1 },
            config: ConfigSpec {
                pes: 64,
                mapping: Mapping::DestinationOriented,
                aggregation_registers: 4,
                max_scheduled_vertices: 2,
                inter_phase_pipelining: false,
                spd_capacity_vertices: 32,
                memory: MemorySpec::Custom {
                    latency_cycles: 40,
                    jitter: 2,
                },
                watchdog_stall_cycles: 2_000,
            },
            fault_seed: 11,
            faults: vec![
                FaultSpec {
                    kind: FaultKindSpec::LinkDelay {
                        node: 5,
                        dir: LinkDir::South,
                        cycles: 3,
                    },
                    from: 0,
                    until: 0,
                },
                FaultSpec {
                    kind: FaultKindSpec::HbmStall {
                        tile: 0,
                        channel: 2,
                        cycles: 0,
                    },
                    from: 20,
                    until: 21,
                },
            ],
            modes: ModeMatrix::full(),
            expect: Expectation::Wedge {
                suspect_contains: "tile 0".into(),
            },
            strict_frontier: Some(true),
            synthetic_bug: false,
            mutations: None,
        }
    }

    #[test]
    fn mutation_schedule_round_trips_and_perturbs_fingerprint() {
        let mut s = sample();
        s.expect = Expectation::Converge;
        s.faults.clear();
        let static_fp = s.fingerprint();
        let static_text = s.to_json_string();
        assert!(!static_text.contains("mutations"));
        s.mutations = Some(MutationSpec {
            batches: 3,
            insert_edges: 8,
            remove_edges: 4,
            add_vertices: 1,
            isolate_vertices: 0,
            seed: 99,
        });
        s.validate().unwrap();
        let text = s.to_json_string();
        assert!(text.contains("\"mutations\""));
        let back = Scenario::from_json_str(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json_string(), text);
        // The schedule is behavior: it must move the fingerprint, and every
        // schedule change must move it again (memoization soundness).
        assert_ne!(s.fingerprint(), static_fp);
        let mut reseeded = s.clone();
        if let Some(m) = &mut reseeded.mutations {
            m.seed = 100;
        }
        assert_ne!(reseeded.fingerprint(), s.fingerprint());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let s = sample();
        let text = s.to_json_string();
        let back = Scenario::from_json_str(&text).unwrap();
        assert_eq!(back, s);
        // Canonical form: re-serialization is byte-identical.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn packed_source_round_trips_and_generate_stays_byte_stable() {
        let mut s = sample();
        let generate_text = s.to_json_string();
        assert!(
            !generate_text.contains("packed_path"),
            "Generate specs must serialize exactly as before the key existed"
        );
        s.graph.source = GraphSource::PackedFile {
            path: "graphs/pokec-22.sgpk".into(),
        };
        let text = s.to_json_string();
        assert!(text.contains("packed_path"));
        let back = Scenario::from_json_str(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn packed_source_with_missing_file_is_a_typed_build_error() {
        let mut spec = sample().graph;
        spec.source = GraphSource::PackedFile {
            path: "/nonexistent/g.sgpk".into(),
        };
        let err = spec.build().unwrap_err();
        assert!(err.contains("packed graph"), "got: {err}");
    }

    #[test]
    fn forever_encoding_maps_to_u64_max() {
        let s = sample();
        let plan = s.fault_plan().unwrap();
        assert_eq!(plan.seed, 11);
        assert_eq!(plan.faults[0].until_cycle, u64::MAX, "until 0 = permanent");
        match plan.faults[1].kind {
            FaultKind::HbmStall { cycles, .. } => assert_eq!(cycles, u64::MAX),
            ref other => panic!("wrong kind {other:?}"),
        }
        assert_eq!(plan.faults[1].from_cycle, 20);
        assert_eq!(plan.faults[1].until_cycle, 21);
    }

    #[test]
    fn graph_specs_build_deterministically() {
        let spec = sample().graph;
        let a = spec.build().unwrap();
        let b = spec.build().unwrap();
        assert_eq!(a.num_vertices(), 64);
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn config_spec_builds_and_validates() {
        let cfg = sample().config.build().unwrap();
        assert_eq!(cfg.placement.num_pes(), 64);
        assert_eq!(cfg.spd_capacity_vertices, 32);
        assert!(!cfg.inter_phase_pipelining);
        let mut bad = sample().config;
        bad.pes = 48;
        assert!(bad.build().is_err());
        bad = sample().config;
        bad.max_scheduled_vertices = 99;
        assert!(bad.build().is_err());
    }

    #[test]
    fn defaulted_keys_round_trip_minimal_scenarios() {
        let text = r#"{
            "name": "minimal",
            "graph": {"family": "path", "vertices": 8},
            "algo": {"kind": "cc"},
            "config": {"pes": 32, "mapping": "row", "aggregation_registers": 16,
                       "max_scheduled_vertices": 16, "inter_phase_pipelining": true,
                       "memory": {"preset": "u280"}},
            "modes": {},
            "expect": {"verdict": "converge"}
        }"#;
        let s = Scenario::from_json_str(text).unwrap();
        assert_eq!(s.graph.family.vertices(), 8);
        assert!(s.faults.is_empty());
        assert!(s.fault_plan().is_none());
        assert!(s.modes.fast_forward && !s.modes.recording);
        assert_eq!(s.strict_frontier, None);
        assert!(!s.synthetic_bug);
        let round = Scenario::from_json_str(&s.to_json_string()).unwrap();
        assert_eq!(round, s);
    }

    #[test]
    fn mode_matrix_emptiness() {
        assert!(!ModeMatrix::full().is_empty());
        assert!(!ModeMatrix::sim_only().is_empty());
        let empty = ModeMatrix {
            fast_forward: false,
            event_driven: false,
            recording: false,
            graphdyns: false,
            gunrock: false,
        };
        assert!(empty.is_empty());
        let recording_only = ModeMatrix {
            recording: true,
            ..empty
        };
        assert!(!recording_only.is_empty());
    }

    #[test]
    fn validate_accepts_sound_scenarios_and_names_the_defect() {
        let mut ok = sample();
        ok.config.watchdog_stall_cycles = 25_000;
        ok.algo = AlgoSpec::Bfs { root: 63 };
        ok.validate().expect("sound scenario validates");

        let mut bad_root = ok.clone();
        bad_root.algo = AlgoSpec::Bfs { root: 64 };
        assert!(bad_root.validate().unwrap_err().contains("out of range"));

        let mut bad_pr = ok.clone();
        bad_pr.algo = AlgoSpec::PageRank { iters: 0 };
        assert!(bad_pr.validate().unwrap_err().contains("iteration"));

        let mut bad_pes = ok.clone();
        bad_pes.config.pes = 48;
        assert!(bad_pes.validate().unwrap_err().contains("multiple of 32"));

        let mut tiny = ok.clone();
        tiny.graph.family = Family::Path { vertices: 1 };
        assert!(tiny.validate().unwrap_err().contains("at least 2"));
    }

    #[test]
    fn fingerprint_ignores_name_but_nothing_else() {
        let a = sample();
        let mut renamed = a.clone();
        renamed.name = "a-different-label".into();
        assert_eq!(a.fingerprint(), renamed.fingerprint());

        let mut reseeded = a.clone();
        reseeded.fault_seed += 1;
        assert_ne!(a.fingerprint(), reseeded.fingerprint());

        let mut regraphed = a.clone();
        regraphed.graph.symmetrize = !regraphed.graph.symmetrize;
        assert_ne!(a.fingerprint(), regraphed.fingerprint());

        // Stable across serialization round trips.
        let back = Scenario::from_json_str(&a.to_json_string()).unwrap();
        assert_eq!(back.fingerprint(), a.fingerprint());
    }
}
