//! Differential conformance harness for the ScalaGraph reproduction.
//!
//! The simulator's correctness story rests on redundancy: the same
//! algorithm on the same graph must agree across the sequential reference
//! engine, the cycle-accurate ScalaGraph simulation in each of its
//! execution modes (stepped, fast-forward, recording), and the GraphDynS /
//! Gunrock baseline models. This crate turns that redundancy into an
//! executable oracle:
//!
//! - [`scenario`] — a serializable [`Scenario`](scenario::Scenario) pinning
//!   graph generator + seed, algorithm, accelerator configuration, fault
//!   schedule, and the engine/mode matrix; JSON round-trips bit-exactly so
//!   scenarios can live in a checked-in `corpus/`.
//! - [`oracle`] — runs one scenario across every declared combination and
//!   diffs final properties, iteration counts, traversed-edge totals, full
//!   [`SimStats`](scalagraph::SimStats) and telemetry summaries, reporting
//!   the first diverging field as a structured
//!   [`Mismatch`](oracle::Mismatch).
//! - [`dynamic`] — seeded mutation schedules: scenarios carrying a
//!   [`MutationSpec`](scenario::MutationSpec) run as a sequence of mutated
//!   snapshots, with incremental CSR maintenance and incremental
//!   BFS/SSSP/CC/widest-path/PageRank checked bit-exactly against full
//!   recompute after every batch.
//! - [`fuzz`] — a deterministic, budget-bounded sampler over weighted
//!   scenario generators (`fuzz(budget, seed)` is a pure function).
//! - [`shrink`] — minimizes any divergence to the smallest scenario with
//!   the same first-mismatch signature, ready to check into the corpus.
//!
//! The CLI front ends are `scalagraph-sim fuzz --budget N --seed S` and
//! `scalagraph-sim replay scenario.json`.
//!
//! No external dependencies: JSON ([`json`]) and the fuzzer's RNG are
//! self-contained so the corpus and fuzz streams can never drift under a
//! dependency bump.

#![warn(missing_docs)]
// Harness code feeds batch runs: recoverable failures must surface as
// Result, never unwind (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod dynamic;
pub mod fuzz;
pub mod json;
pub mod oracle;
pub mod scenario;
pub mod shrink;

pub use dynamic::materialize_batch;
pub use fuzz::{fuzz, fuzz_dynamic, sample_scenario, FuzzFailure, FuzzReport, SplitMix64};
pub use oracle::{run_scenario, Mismatch, Observation, Outcome, Report};
pub use scenario::{
    AlgoSpec, ConfigSpec, Expectation, Family, FaultKindSpec, FaultSpec, GraphSource, GraphSpec,
    MemorySpec, ModeMatrix, MutationSpec, Scenario,
};
pub use shrink::{shrink, signature, ShrinkOutcome, Signature};
