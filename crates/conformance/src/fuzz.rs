//! The deterministic, budget-bounded scenario fuzzer.
//!
//! Scenarios are sampled from weighted generators — graph family × size ×
//! algorithm × PE count × mapping × memory latency × fault schedule — using
//! a self-contained SplitMix64 stream, so `fuzz(budget, seed)` is a pure
//! function: the same `(budget, seed)` pair always explores the same
//! scenarios in the same order, on any host.
//!
//! Sampled fault schedules are restricted to *result-preserving* kinds
//! (finite link delays and finite HBM stalls): every sampled scenario
//! expects [`Expectation::Converge`], so a kind that may legally change
//! results (drop, corruption) would only produce false positives. Those
//! kinds remain available to hand-written corpus scenarios.

use crate::oracle::{run_scenario, Report};
use crate::scenario::{
    AlgoSpec, ConfigSpec, Expectation, Family, FaultKindSpec, FaultSpec, GraphSource, GraphSpec,
    MemorySpec, ModeMatrix, MutationSpec, Scenario,
};
use crate::shrink::{shrink, ShrinkOutcome};
use scalagraph::fault::LinkDir;
use scalagraph::Mapping;

/// SplitMix64: tiny, seedable, platform-independent. The fuzzer must not
/// depend on an external RNG crate whose stream could change under us —
/// corpus reproducibility hinges on this exact sequence.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Samples one scenario from the weighted generator space.
///
/// Every sampled scenario is well-formed by construction (valid roots,
/// PE multiples, legal scheduler widths) and expects convergence.
pub fn sample_scenario(rng: &mut SplitMix64, index: usize) -> Scenario {
    // Graph: small enough to keep a differential run cheap, large enough to
    // exercise slicing, multi-tile placement and frontier evolution.
    let vertices = rng.range(8, 256) as usize;
    let family = match rng.below(6) {
        0 => Family::Rmat {
            vertices,
            edges: vertices * rng.range(1, 6) as usize,
            seed: rng.next_u64(),
        },
        1 => Family::Uniform {
            vertices,
            edges: vertices * rng.range(1, 6) as usize,
            seed: rng.next_u64(),
        },
        2 => Family::Path { vertices },
        3 => Family::Star { vertices },
        4 => {
            let rows = rng.range(2, 16) as usize;
            Family::Grid {
                rows,
                cols: rng.range(2, 16) as usize,
            }
        }
        _ => Family::BinaryTree { vertices },
    };
    let n = family.vertices() as u64;
    let weighted = rng.chance(60);
    let graph = GraphSpec {
        family,
        symmetrize: rng.chance(30),
        max_weight: if weighted { rng.range(2, 64) as u32 } else { 0 },
        weight_seed: rng.next_u64(),
        source: GraphSource::Generate,
    };

    let root = rng.below(n) as u32;
    let algo = match rng.below(5) {
        0 => AlgoSpec::Bfs { root },
        1 => AlgoSpec::Sssp { root },
        2 => AlgoSpec::Cc,
        3 => AlgoSpec::PageRank {
            iters: rng.range(2, 6) as usize,
        },
        _ => AlgoSpec::WidestPath { root },
    };

    let pes = *rng.pick(&[32usize, 64, 128]);
    let memory = if rng.chance(40) {
        MemorySpec::Custom {
            latency_cycles: rng.range(8, 64) as u32,
            jitter: rng.below(4) as u32,
        }
    } else {
        MemorySpec::U280
    };
    let config = ConfigSpec {
        pes,
        mapping: *rng.pick(&[
            Mapping::RowOriented,
            Mapping::SourceOriented,
            Mapping::DestinationOriented,
        ]),
        aggregation_registers: *rng.pick(&[0usize, 4, 16]),
        max_scheduled_vertices: *rng.pick(&[1usize, 4, 16]),
        inter_phase_pipelining: rng.chance(50),
        // Occasionally force slicing by shrinking the scratchpad below the
        // vertex count.
        spd_capacity_vertices: if rng.chance(25) {
            (family.vertices() / 2).max(4)
        } else {
            0
        },
        memory,
        ..ConfigSpec::small()
    };

    // ~25% of scenarios carry a timing-only fault schedule. Windows are
    // finite and stalls bounded so the run still converges.
    let mut faults = Vec::new();
    if rng.chance(25) {
        for _ in 0..rng.range(1, 2) {
            let from = rng.below(200);
            let kind = if rng.chance(60) {
                FaultKindSpec::LinkDelay {
                    node: rng.below(pes as u64) as usize,
                    dir: *rng.pick(&[LinkDir::North, LinkDir::South, LinkDir::West, LinkDir::East]),
                    cycles: rng.range(1, 8),
                }
            } else {
                FaultKindSpec::HbmStall {
                    tile: rng.below((pes / 32) as u64) as usize,
                    channel: rng.below(2) as usize,
                    cycles: rng.range(1, 32),
                }
            };
            faults.push(FaultSpec {
                kind,
                from,
                until: from + rng.range(50, 500),
            });
        }
    }

    let modes = ModeMatrix {
        fast_forward: true,
        recording: rng.chance(50),
        graphdyns: rng.chance(50),
        gunrock: rng.chance(50),
        // `event_driven` is drawn after the older mode draws so those keep
        // their position in the seeded stream.
        event_driven: rng.chance(50),
    };

    // Mutation schedule draws come last (after every pre-dynamic draw) so
    // the older portion of each scenario's stream is unchanged. ~20% of
    // scenarios churn; fault plans are timing-only so they compose freely.
    let mutations = if rng.chance(20) {
        Some(sample_mutations(rng))
    } else {
        None
    };

    Scenario {
        name: format!("fuzz-{index:04}"),
        graph,
        algo,
        config,
        fault_seed: rng.next_u64(),
        faults,
        modes,
        expect: Expectation::Converge,
        strict_frontier: None,
        synthetic_bug: false,
        mutations,
    }
}

/// Samples a mutation schedule (used by [`sample_scenario`] and forced on
/// every scenario by [`fuzz_dynamic`]).
fn sample_mutations(rng: &mut SplitMix64) -> MutationSpec {
    MutationSpec {
        batches: rng.range(1, 4) as u32,
        insert_edges: rng.below(9) as u32,
        remove_edges: rng.below(9) as u32,
        add_vertices: rng.below(3) as u32,
        isolate_vertices: rng.below(2) as u32,
        seed: rng.next_u64(),
    }
}

/// One fuzz-found divergence, with its minimized reproduction.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the scenario in the fuzz sequence.
    pub index: usize,
    /// The scenario as originally sampled.
    pub scenario: Scenario,
    /// The shrunk reproduction (same first-mismatch signature).
    pub minimized: Scenario,
    /// Oracle report for the *minimized* scenario.
    pub report: Report,
}

/// The outcome of one `fuzz(budget, seed)` campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Scenarios executed.
    pub budget: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Scenarios whose oracle report was clean.
    pub passed: usize,
    /// Scenarios the oracle rejected as malformed (a sampler bug if ever
    /// non-zero; counted instead of panicking so a campaign always ends).
    pub rejected: usize,
    /// Divergences, each with its minimized repro.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Deterministic text rendering (what `scalagraph-sim fuzz` prints).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz campaign: seed {}, budget {}: {} passed, {} failed, {} rejected",
            self.seed,
            self.budget,
            self.passed,
            self.failures.len(),
            self.rejected
        );
        for f in &self.failures {
            let _ = writeln!(
                out,
                "failure #{} (minimized to {} vertices):",
                f.index,
                f.minimized.graph.family.vertices()
            );
            for line in f.report.render().lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }
}

/// Budget per shrink: candidates are cheap to generate but each probe is a
/// full differential run, so the bound is what keeps a campaign's cost
/// predictable.
pub const SHRINK_MAX_RUNS: usize = 200;

/// Runs a deterministic fuzz campaign: `budget` sampled scenarios through
/// the differential oracle, shrinking every divergence.
pub fn fuzz(budget: usize, seed: u64) -> FuzzReport {
    let mut rng = SplitMix64::new(seed);
    let mut report = FuzzReport {
        budget,
        seed,
        passed: 0,
        rejected: 0,
        failures: Vec::new(),
    };
    for index in 0..budget {
        let scenario = sample_scenario(&mut rng, index);
        match run_scenario(&scenario) {
            Err(_) => report.rejected += 1,
            Ok(r) if r.passed() => report.passed += 1,
            Ok(r) => {
                let ShrinkOutcome {
                    scenario: minimized,
                    report: min_report,
                    ..
                } = shrink(&scenario, &r, SHRINK_MAX_RUNS);
                report.failures.push(FuzzFailure {
                    index,
                    scenario,
                    minimized,
                    report: min_report,
                });
            }
        }
    }
    report
}

/// Runs a fuzz campaign where **every** scenario carries a mutation
/// schedule: the dynamic differential check (incremental CSR + incremental
/// algorithms vs full recompute, across every enabled mode) runs on each
/// of the `budget` cases. This is the acceptance-gate campaign for the
/// dynamic subsystem; `fuzz` still covers the mixed static/dynamic space.
pub fn fuzz_dynamic(budget: usize, seed: u64) -> FuzzReport {
    let mut rng = SplitMix64::new(seed);
    let mut report = FuzzReport {
        budget,
        seed,
        passed: 0,
        rejected: 0,
        failures: Vec::new(),
    };
    for index in 0..budget {
        let mut scenario = sample_scenario(&mut rng, index);
        scenario.name = format!("fuzz-dyn-{index:04}");
        if scenario.mutations.is_none() {
            scenario.mutations = Some(sample_mutations(&mut rng));
        }
        match run_scenario(&scenario) {
            Err(_) => report.rejected += 1,
            Ok(r) if r.passed() => report.passed += 1,
            Ok(r) => {
                let ShrinkOutcome {
                    scenario: minimized,
                    report: min_report,
                    ..
                } = shrink(&scenario, &r, SHRINK_MAX_RUNS);
                report.failures.push(FuzzFailure {
                    index,
                    scenario,
                    minimized,
                    report: min_report,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_the_reference_stream() {
        // First outputs for seed 1234567, per the published constants.
        let mut rng = SplitMix64::new(0);
        let a: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut rng2 = SplitMix64::new(0);
        let b: Vec<u64> = (0..3).map(|_| rng2.next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn sampled_scenarios_are_well_formed_and_deterministic() {
        let mut rng = SplitMix64::new(42);
        let mut rng2 = SplitMix64::new(42);
        for i in 0..64 {
            let s = sample_scenario(&mut rng, i);
            let t = sample_scenario(&mut rng2, i);
            assert_eq!(s, t, "sampling must be deterministic");
            // Well-formed: graph and config build, roots in range.
            let g = s.graph.build().expect("graph builds");
            s.config.build().expect("config builds");
            if let AlgoSpec::Bfs { root }
            | AlgoSpec::Sssp { root }
            | AlgoSpec::WidestPath { root } = s.algo
            {
                assert!((root as usize) < g.num_vertices());
            }
            assert!(s.faults.iter().all(|f| f.is_result_preserving()));
            // Round-trips like any corpus scenario.
            let back = Scenario::from_json_str(&s.to_json_string()).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn tiny_campaign_is_deterministic() {
        let a = fuzz(4, 7);
        let b = fuzz(4, 7);
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.failures.len(), b.failures.len());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.passed + a.rejected + a.failures.len(), 4);
    }
}
