//! Automatic scenario minimization.
//!
//! Given a scenario the oracle rejects, the shrinker searches for the
//! smallest scenario that still reproduces the *same divergence* — same
//! first-mismatch field between the same two engines. Greedy
//! first-improvement: try each reduction candidate in order, restart from
//! the first one that preserves the signature, stop at a fixpoint or when
//! the oracle-run budget is exhausted.
//!
//! Candidates are ordered large-to-small (halve the graph before dropping a
//! single fault before nudging a knob), and every candidate is strictly
//! smaller under a well-founded measure — vertex/edge counts, fault count,
//! and distance-from-default of each knob all only decrease — so the loop
//! terminates even without the budget.

use crate::oracle::{run_scenario, Report};
use crate::scenario::{AlgoSpec, ConfigSpec, Family, Scenario};

/// The identity of a divergence: the first mismatch's field and engine
/// pair. A shrink step is only accepted if this is preserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// First diverging field.
    pub field: String,
    /// Left engine of the comparison.
    pub left_engine: String,
    /// Right engine of the comparison.
    pub right_engine: String,
}

/// Extracts the signature of a failing report (`None` if it passed).
pub fn signature(report: &Report) -> Option<Signature> {
    report.mismatches.first().map(|m| Signature {
        field: m.field.clone(),
        left_engine: m.left_engine.clone(),
        right_engine: m.right_engine.clone(),
    })
}

/// What the shrinker settled on.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized scenario (possibly the input, if nothing smaller
    /// reproduced).
    pub scenario: Scenario,
    /// The oracle report of the minimized scenario.
    pub report: Report,
    /// Differential runs spent.
    pub oracle_runs: usize,
}

/// Minimizes `scenario` while preserving the first-mismatch signature of
/// `original_report`. Spends at most `max_runs` oracle runs.
///
/// If `original_report` passed (no mismatch), the input is returned
/// untouched.
pub fn shrink(scenario: &Scenario, original_report: &Report, max_runs: usize) -> ShrinkOutcome {
    let target = match signature(original_report) {
        Some(sig) => sig,
        None => {
            return ShrinkOutcome {
                scenario: scenario.clone(),
                report: original_report.clone(),
                oracle_runs: 0,
            }
        }
    };
    let mut best = scenario.clone();
    let mut best_report = original_report.clone();
    let mut runs = 0usize;
    'outer: loop {
        for mut candidate in candidates(&best) {
            if runs >= max_runs {
                break 'outer;
            }
            candidate.name = format!("{}-min", scenario.name);
            runs += 1;
            if let Ok(report) = run_scenario(&candidate) {
                if signature(&report).as_ref() == Some(&target) {
                    best = candidate;
                    best_report = report;
                    continue 'outer; // restart candidate sweep from the top
                }
            }
        }
        break; // fixpoint: no candidate reproduced
    }
    best.name = scenario.name.clone();
    best_report.scenario = best.name.clone();
    ShrinkOutcome {
        scenario: best,
        report: best_report,
        oracle_runs: runs,
    }
}

/// Strictly-smaller variants of `s`, most aggressive first.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let v = s.graph.family.vertices();

    // Graph size: halve, then decrement (the classic shrink ladder — the
    // halving finds the magnitude, the decrement polishes).
    for target in [v / 2, v.saturating_sub(1)] {
        if target >= 2 && target < v {
            out.push(with_vertices(s, target));
        }
    }
    // Edge count, for the random families.
    match s.graph.family {
        Family::Rmat {
            vertices,
            edges,
            seed,
        } if edges > vertices => {
            let mut c = s.clone();
            c.graph.family = Family::Rmat {
                vertices,
                edges: (edges / 2).max(vertices),
                seed,
            };
            out.push(c);
        }
        Family::Uniform {
            vertices,
            edges,
            seed,
        } if edges > vertices => {
            let mut c = s.clone();
            c.graph.family = Family::Uniform {
                vertices,
                edges: (edges / 2).max(vertices),
                seed,
            };
            out.push(c);
        }
        _ => {}
    }

    // Drop each fault individually.
    for i in 0..s.faults.len() {
        let mut c = s.clone();
        c.faults.remove(i);
        out.push(c);
    }

    // Graph decorations back to trivial.
    if s.graph.max_weight > 0 {
        let mut c = s.clone();
        c.graph.max_weight = 0;
        out.push(c);
    }
    if s.graph.symmetrize {
        let mut c = s.clone();
        c.graph.symmetrize = false;
        out.push(c);
    }

    // PageRank schedule.
    if let AlgoSpec::PageRank { iters } = s.algo {
        if iters > 1 {
            let mut c = s.clone();
            c.algo = AlgoSpec::PageRank { iters: iters / 2 };
            out.push(c);
        }
    }

    // Configuration knobs, each toward the `ConfigSpec::small()` default.
    let defaults = ConfigSpec::small();
    let knobs: Vec<fn(&mut ConfigSpec, &ConfigSpec)> = vec![
        |c, d| c.pes = d.pes,
        |c, d| c.mapping = d.mapping,
        |c, d| c.aggregation_registers = d.aggregation_registers,
        |c, d| c.max_scheduled_vertices = d.max_scheduled_vertices,
        |c, d| c.spd_capacity_vertices = d.spd_capacity_vertices,
        |c, d| c.memory = d.memory,
        |c, d| c.watchdog_stall_cycles = d.watchdog_stall_cycles,
        |c, d| c.inter_phase_pipelining = d.inter_phase_pipelining,
    ];
    for knob in knobs {
        let mut cfg = s.config;
        knob(&mut cfg, &defaults);
        if cfg != s.config {
            let mut c = s.clone();
            c.config = cfg;
            out.push(c);
        }
    }

    out
}

/// `s` with the graph resized to `target` vertices, roots clamped back into
/// range and dependent parameters rescaled.
fn with_vertices(s: &Scenario, target: usize) -> Scenario {
    let mut c = s.clone();
    c.graph.family = match s.graph.family {
        Family::Rmat {
            edges,
            seed,
            vertices,
        } => Family::Rmat {
            vertices: target,
            edges: edges * target / vertices.max(1),
            seed,
        },
        Family::Uniform {
            edges,
            seed,
            vertices,
        } => Family::Uniform {
            vertices: target,
            edges: edges * target / vertices.max(1),
            seed,
        },
        Family::Path { .. } => Family::Path { vertices: target },
        Family::Star { .. } => Family::Star { vertices: target },
        Family::Grid { rows, cols } => {
            // Halve the longer side; floor at 1.
            if rows >= cols {
                Family::Grid {
                    rows: (rows / 2).max(1),
                    cols,
                }
            } else {
                Family::Grid {
                    rows,
                    cols: (cols / 2).max(1),
                }
            }
        }
        Family::BinaryTree { .. } => Family::BinaryTree { vertices: target },
    };
    let n = c.graph.family.vertices() as u32;
    c.algo = match c.algo {
        AlgoSpec::Bfs { root } => AlgoSpec::Bfs {
            root: root.min(n.saturating_sub(1)),
        },
        AlgoSpec::Sssp { root } => AlgoSpec::Sssp {
            root: root.min(n.saturating_sub(1)),
        },
        AlgoSpec::WidestPath { root } => AlgoSpec::WidestPath {
            root: root.min(n.saturating_sub(1)),
        },
        other => other,
    };
    if c.config.spd_capacity_vertices > 0 {
        c.config.spd_capacity_vertices = c.config.spd_capacity_vertices.min(n as usize);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Expectation, Family, GraphSource, GraphSpec, ModeMatrix};
    use scalagraph::Mapping;

    fn failing_scenario() -> Scenario {
        Scenario {
            name: "synthetic".into(),
            graph: GraphSpec {
                family: Family::Uniform {
                    vertices: 200,
                    edges: 900,
                    seed: 9,
                },
                symmetrize: true,
                max_weight: 16,
                weight_seed: 2,
                source: GraphSource::Generate,
            },
            algo: AlgoSpec::Bfs { root: 150 },
            config: ConfigSpec {
                pes: 64,
                mapping: Mapping::SourceOriented,
                aggregation_registers: 4,
                ..ConfigSpec::small()
            },
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::sim_only(),
            expect: Expectation::Converge,
            strict_frontier: None,
            // Injected bug: the oracle perturbs the stepped digest, so the
            // mismatch survives any graph reduction.
            synthetic_bug: true,
            mutations: None,
        }
    }

    #[test]
    fn shrinks_synthetic_bug_to_a_tiny_graph() {
        let s = failing_scenario();
        let report = run_scenario(&s).unwrap();
        assert!(!report.passed());
        let sig = signature(&report).unwrap();
        let out = shrink(&s, &report, 200);
        assert!(
            out.scenario.graph.family.vertices() <= 16,
            "expected <=16 vertices, got {}",
            out.scenario.graph.family.vertices()
        );
        assert_eq!(signature(&out.report).as_ref(), Some(&sig));
        assert_eq!(out.scenario.name, s.name);
        // Knobs drift back to defaults on the way down.
        assert_eq!(out.scenario.config.pes, 32);
        assert!(out.oracle_runs <= 200);
    }

    #[test]
    fn passing_report_is_returned_untouched() {
        let mut s = failing_scenario();
        s.synthetic_bug = false;
        let report = run_scenario(&s).unwrap();
        assert!(report.passed(), "{}", report.render());
        let out = shrink(&s, &report, 200);
        assert_eq!(out.oracle_runs, 0);
        assert_eq!(out.scenario, s);
    }
}
