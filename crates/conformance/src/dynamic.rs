//! Dynamic-scenario execution: seeded mutation schedules, with full
//! recompute as the golden reference for every batch.
//!
//! A scenario with a [`MutationSpec`] runs as a *sequence* of graph
//! snapshots. For each batch the oracle:
//!
//! 1. materializes the batch from the seeded substream
//!    ([`materialize_batch`] is a pure function of spec + graph state, so
//!    replays are exact),
//! 2. applies it through [`DynamicCsr`] and differentially checks the
//!    incremental CSR maintenance against a from-scratch rebuild (both the
//!    canonical adjacency and the Section IV-C degree-aware layout must be
//!    bit-identical),
//! 3. runs the full engine/mode comparison matrix on the mutated snapshot
//!    (stepped, fast-forward, event-driven, recording, baselines — exactly
//!    what a static scenario runs), and
//! 4. advances the incremental algorithm state (BFS/SSSP/CC/widest-path
//!    repair or delta-PageRank) and checks it **bit-exactly** against the
//!    reference engine's full recompute on the mutated graph.
//!
//! Any divergence becomes a [`Mismatch`] whose field is prefixed with
//! `batch[k].`, so a failing replay names the exact batch that broke.

use crate::fuzz::SplitMix64;
use crate::oracle::{engines, run_static_on, Mismatch, Outcome, Props, Report};
use crate::scenario::{AlgoSpec, Expectation, MutationSpec, Scenario};
use scalagraph_algo::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp, WidestPath};
use scalagraph_algo::dynamic::{delta_pagerank, repair_rooted, trace_pagerank, PageRankTrace};
use scalagraph_algo::{Algorithm, ReferenceEngine};
use scalagraph_graph::mutate::{DynamicCsr, MutationBatch, MutationDelta};
use scalagraph_graph::{Csr, Edge};

/// Materializes mutation batch `batch_index` (1-based) of a schedule
/// against the current graph state.
///
/// Deterministic: draws come from a per-batch SplitMix64 substream of
/// `spec.seed`, and every draw is resolved against `graph` (the snapshot
/// *before* this batch), so identical (spec, graph) always yield the same
/// batch. Op order is: vertex adds, edge removals (drawn as flat edge
/// indices, so removal pressure follows the degree distribution), vertex
/// isolations, then edge insertions (which may target the just-added
/// vertices). Inserted edges carry a weight in `1..=max_weight` when the
/// scenario's graph is weighted, and 0 otherwise.
pub fn materialize_batch(
    spec: &MutationSpec,
    max_weight: u32,
    graph: &Csr,
    batch_index: u32,
) -> MutationBatch {
    let mut rng = SplitMix64::new(
        spec.seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(batch_index) + 1)),
    );
    let old_n = graph.num_vertices() as u64;
    let mut batch = MutationBatch::new();
    for _ in 0..spec.add_vertices {
        batch.add_vertex();
    }
    for _ in 0..spec.remove_edges {
        if graph.num_edges() == 0 {
            break;
        }
        let idx = rng.below(graph.num_edges() as u64) as usize;
        // Map the flat edge index back to its source vertex. A duplicate
        // draw (or a parallel copy of an earlier draw) makes the removal a
        // no-op, so the realized removal count can undershoot the spec.
        let src = graph.offsets().partition_point(|&o| o <= idx as u64) - 1;
        batch.remove_edge(src as u32, graph.neighbor_at(idx));
    }
    for _ in 0..spec.isolate_vertices {
        batch.isolate_vertex(rng.below(old_n) as u32);
    }
    let grown_n = old_n + u64::from(spec.add_vertices);
    for _ in 0..spec.insert_edges {
        let src = rng.below(grown_n) as u32;
        let dst = rng.below(grown_n) as u32;
        let weight = if max_weight > 0 {
            rng.range(1, u64::from(max_weight)) as u32
        } else {
            0
        };
        batch.insert_edge(Edge::weighted(src, dst, weight));
    }
    batch
}

/// The incremental algorithm state carried across batches.
enum Tracker {
    /// Converged `u32` lattice properties (BFS/SSSP/CC/widest-path).
    Rooted(Vec<u32>),
    /// Per-iteration rank trace (PageRank).
    PageRank(PageRankTrace),
}

fn init_tracker(s: &Scenario, graph: &Csr) -> Tracker {
    let engine = ReferenceEngine::new();
    match s.algo {
        AlgoSpec::Bfs { root } => {
            Tracker::Rooted(engine.run(&Bfs::from_root(root), graph).properties)
        }
        AlgoSpec::Sssp { root } => {
            Tracker::Rooted(engine.run(&Sssp::from_root(root), graph).properties)
        }
        AlgoSpec::Cc => Tracker::Rooted(engine.run(&ConnectedComponents::new(), graph).properties),
        AlgoSpec::WidestPath { root } => {
            Tracker::Rooted(engine.run(&WidestPath::from_root(root), graph).properties)
        }
        AlgoSpec::PageRank { iters } => {
            Tracker::PageRank(trace_pagerank(&PageRank::new(iters), graph))
        }
    }
}

/// The reference engine's final properties inside a batch report.
fn golden_props(report: &Report) -> Result<&Props, String> {
    for o in &report.observations {
        if o.engine == engines::REFERENCE {
            if let Outcome::Converged(d) = &o.outcome {
                return Ok(&d.props);
            }
        }
    }
    Err("dynamic batch report carries no reference observation".into())
}

fn push_first_divergence<T: Copy, K: Eq + std::fmt::Debug>(
    mismatches: &mut Vec<Mismatch>,
    batch: u32,
    ours: &[T],
    golden: &[T],
    key: impl Fn(T) -> K,
) {
    if ours.len() != golden.len() {
        mismatches.push(Mismatch {
            field: format!("batch[{batch}].incremental.properties.len"),
            left_engine: "incremental".into(),
            right_engine: engines::REFERENCE.into(),
            left: ours.len().to_string(),
            right: golden.len().to_string(),
        });
        return;
    }
    for (i, (&a, &b)) in ours.iter().zip(golden).enumerate() {
        let (ka, kb) = (key(a), key(b));
        if ka != kb {
            mismatches.push(Mismatch {
                field: format!("batch[{batch}].incremental.properties[{i}]"),
                left_engine: "incremental".into(),
                right_engine: engines::REFERENCE.into(),
                left: format!("{ka:?}"),
                right: format!("{kb:?}"),
            });
            return;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn advance_rooted<A: Algorithm<Prop = u32>>(
    algo: &A,
    props: &mut Vec<u32>,
    old_graph: &Csr,
    new_graph: &Csr,
    delta: &MutationDelta,
    golden: &Props,
    batch: u32,
    mismatches: &mut Vec<Mismatch>,
) {
    let repaired = repair_rooted(algo, old_graph, props, new_graph, delta);
    if let Props::Ints(g) = golden {
        push_first_divergence(mismatches, batch, &repaired.properties, g, |x| x);
    }
    *props = repaired.properties;
}

fn csr_digest(g: &Csr) -> String {
    format!(
        "{}v/{}e weighted={}",
        g.num_vertices(),
        g.num_edges(),
        g.is_weighted()
    )
}

/// Runs a scenario that carries a mutation schedule. Called by
/// [`run_scenario`](crate::oracle::run_scenario) after the scenario-level
/// sanity checks.
pub(crate) fn run_dynamic_scenario(s: &Scenario) -> Result<Report, String> {
    let Some(spec) = s.mutations else {
        return Err(format!(
            "scenario `{}` reached the dynamic path without a mutation schedule",
            s.name
        ));
    };
    if spec.batches == 0 {
        return Err(format!(
            "scenario `{}` declares a mutation schedule with 0 batches",
            s.name
        ));
    }
    if matches!(s.expect, Expectation::Wedge { .. }) {
        return Err(format!(
            "scenario `{}` combines a mutation schedule with a wedge expectation; \
             dynamic scenarios must expect convergence",
            s.name
        ));
    }

    let base = s.graph.build()?;
    let mut dynamic = DynamicCsr::new(base);

    // Batch 0: the unmutated snapshot, through the full matrix. This also
    // surfaces root-range/config errors before any mutation runs.
    let mut report = run_static_on(s, dynamic.canonical())?;
    let mut tracker = init_tracker(s, dynamic.canonical());

    for k in 1..=spec.batches {
        let old_graph = dynamic.canonical().clone();
        let batch = materialize_batch(&spec, s.graph.max_weight, dynamic.canonical(), k);
        let delta = dynamic
            .apply(&batch)
            .map_err(|e| format!("scenario `{}` batch {k}: {e}", s.name))?;

        // Storage check: incremental CSR maintenance vs from-scratch
        // rebuild, for both the canonical and the degree-aware view.
        let (rebuilt_canonical, rebuilt_laidout) = dynamic.rebuild_reference();
        if &rebuilt_canonical != dynamic.canonical() {
            report.mismatches.push(Mismatch {
                field: format!("batch[{k}].csr.canonical"),
                left_engine: "incremental".into(),
                right_engine: "rebuild".into(),
                left: csr_digest(dynamic.canonical()),
                right: csr_digest(&rebuilt_canonical),
            });
        }
        if &rebuilt_laidout != dynamic.laidout() {
            report.mismatches.push(Mismatch {
                field: format!("batch[{k}].csr.laidout"),
                left_engine: "incremental".into(),
                right_engine: "rebuild".into(),
                left: csr_digest(dynamic.laidout()),
                right: csr_digest(&rebuilt_laidout),
            });
        }

        // Full matrix on the mutated snapshot: every engine/mode recomputes
        // from scratch and is diffed exactly as in a static scenario.
        let batch_report = run_static_on(s, dynamic.canonical())?;
        let golden = golden_props(&batch_report)?;

        // Incremental algorithms vs the golden full recompute: bit-exact.
        match &mut tracker {
            Tracker::Rooted(props) => match s.algo {
                AlgoSpec::Bfs { root } => advance_rooted(
                    &Bfs::from_root(root),
                    props,
                    &old_graph,
                    dynamic.canonical(),
                    &delta,
                    golden,
                    k,
                    &mut report.mismatches,
                ),
                AlgoSpec::Sssp { root } => advance_rooted(
                    &Sssp::from_root(root),
                    props,
                    &old_graph,
                    dynamic.canonical(),
                    &delta,
                    golden,
                    k,
                    &mut report.mismatches,
                ),
                AlgoSpec::Cc => advance_rooted(
                    &ConnectedComponents::new(),
                    props,
                    &old_graph,
                    dynamic.canonical(),
                    &delta,
                    golden,
                    k,
                    &mut report.mismatches,
                ),
                AlgoSpec::WidestPath { root } => advance_rooted(
                    &WidestPath::from_root(root),
                    props,
                    &old_graph,
                    dynamic.canonical(),
                    &delta,
                    golden,
                    k,
                    &mut report.mismatches,
                ),
                AlgoSpec::PageRank { .. } => {}
            },
            Tracker::PageRank(trace) => {
                if let AlgoSpec::PageRank { iters } = s.algo {
                    let pr = PageRank::new(iters);
                    let (new_trace, _stats) =
                        delta_pagerank(&pr, trace, &old_graph, dynamic.canonical(), &delta);
                    if let Props::Floats(g) = golden {
                        push_first_divergence(
                            &mut report.mismatches,
                            k,
                            new_trace.final_ranks(),
                            g,
                            f32::to_bits,
                        );
                    }
                    *trace = new_trace;
                }
            }
        }

        // Fold the batch's own engine-vs-engine divergences in, named by
        // batch, and let the last batch's observations stand as the
        // report's observations.
        report
            .mismatches
            .extend(batch_report.mismatches.iter().map(|m| Mismatch {
                field: format!("batch[{k}].{}", m.field),
                ..m.clone()
            }));
        report.observations = batch_report.observations;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ConfigSpec, Family, GraphSource, GraphSpec, ModeMatrix};

    fn dynamic_scenario(algo: AlgoSpec, spec: MutationSpec) -> Scenario {
        Scenario {
            name: "dyn-test".into(),
            graph: GraphSpec {
                family: Family::Uniform {
                    vertices: 48,
                    edges: 192,
                    seed: 9,
                },
                symmetrize: false,
                max_weight: if matches!(algo, AlgoSpec::Sssp { .. }) {
                    16
                } else {
                    0
                },
                weight_seed: 5,
                source: GraphSource::Generate,
            },
            algo,
            config: ConfigSpec::small(),
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::sim_only(),
            expect: Expectation::Converge,
            strict_frontier: None,
            synthetic_bug: false,
            mutations: Some(spec),
        }
    }

    fn churn() -> MutationSpec {
        MutationSpec {
            batches: 3,
            insert_edges: 6,
            remove_edges: 6,
            add_vertices: 1,
            isolate_vertices: 1,
            seed: 77,
        }
    }

    #[test]
    fn materialize_is_deterministic_and_respects_counts() {
        let g = GraphSpec {
            family: Family::Uniform {
                vertices: 32,
                edges: 128,
                seed: 1,
            },
            symmetrize: false,
            max_weight: 8,
            weight_seed: 0,
            source: GraphSource::Generate,
        }
        .build()
        .unwrap();
        let spec = churn();
        let a = materialize_batch(&spec, 8, &g, 1);
        let b = materialize_batch(&spec, 8, &g, 1);
        assert_eq!(a, b, "same (spec, graph, index) must replay identically");
        let c = materialize_batch(&spec, 8, &g, 2);
        assert_ne!(a, c, "different batch indices draw different substreams");
        assert_eq!(a.len(), 6 + 6 + 1 + 1);
    }

    #[test]
    fn dynamic_bfs_scenario_passes_end_to_end() {
        let s = dynamic_scenario(AlgoSpec::Bfs { root: 0 }, churn());
        let report = crate::oracle::run_scenario(&s).unwrap();
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn dynamic_sssp_scenario_passes_end_to_end() {
        let s = dynamic_scenario(AlgoSpec::Sssp { root: 3 }, churn());
        let report = crate::oracle::run_scenario(&s).unwrap();
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn dynamic_pagerank_scenario_passes_end_to_end() {
        let s = dynamic_scenario(AlgoSpec::PageRank { iters: 4 }, churn());
        let report = crate::oracle::run_scenario(&s).unwrap();
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn dynamic_scenario_with_wedge_expectation_is_rejected() {
        let mut s = dynamic_scenario(AlgoSpec::Bfs { root: 0 }, churn());
        s.expect = Expectation::Wedge {
            suspect_contains: "tile".into(),
        };
        assert!(s.validate().is_err());
        assert!(crate::oracle::run_scenario(&s).is_err());
    }

    #[test]
    fn dynamic_scenario_with_zero_batches_is_rejected() {
        let mut spec = churn();
        spec.batches = 0;
        let s = dynamic_scenario(AlgoSpec::Bfs { root: 0 }, spec);
        assert!(s.validate().is_err());
        assert!(crate::oracle::run_scenario(&s).is_err());
    }

    #[test]
    fn schedules_change_the_fingerprint() {
        let a = dynamic_scenario(AlgoSpec::Bfs { root: 0 }, churn());
        let mut b = a.clone();
        b.mutations = Some(MutationSpec {
            seed: 78,
            ..churn()
        });
        let mut c = a.clone();
        c.mutations = None;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(b.fingerprint(), c.fingerprint());
    }
}
