//! Regenerates the checked-in `corpus/` scenarios in canonical form.
//!
//! ```text
//! cargo run -p scalagraph-conformance --example gen_corpus
//! ```
//!
//! Each scenario here is a regression pin or a known-interesting case; the
//! tier-1 `tests/conformance.rs` suite replays every file this writes. Run
//! this after changing the scenario JSON schema so the corpus stays in the
//! canonical byte-for-byte serialization.

use scalagraph::fault::LinkDir;
use scalagraph::Mapping;
use scalagraph_conformance::{
    AlgoSpec, ConfigSpec, Expectation, Family, FaultKindSpec, FaultSpec, GraphSource, GraphSpec,
    MemorySpec, ModeMatrix, MutationSpec, Scenario,
};

fn unit_graph(family: Family) -> GraphSpec {
    GraphSpec {
        family,
        symmetrize: false,
        max_weight: 0,
        weight_seed: 0,
        source: GraphSource::Generate,
    }
}

fn corpus() -> Vec<Scenario> {
    vec![
        // Regression: a pipelined wave that consumes a non-empty frontier
        // but produces zero apply work (BFS from a zero-out-degree star
        // leaf) must still count as an iteration, exactly as the reference
        // engine counts it. `strict_frontier` forces the strict comparison
        // even though pipelining is on: with a single wave there is nothing
        // for the overlap to legally reorder.
        Scenario {
            name: "regression-star-leaf-iteration".into(),
            graph: unit_graph(Family::Star { vertices: 64 }),
            algo: AlgoSpec::Bfs { root: 5 },
            config: ConfigSpec::small(),
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::full(),
            expect: Expectation::Converge,
            strict_frontier: Some(true),
            synthetic_bug: false,
            mutations: None,
        },
        // Regression: same final-wave undercount on the other edge case —
        // a path's trailing vertex has no out-edges, so the last wave of a
        // pipelined run used to go uncounted (N-1 instead of N). On a path
        // every frontier is a single vertex, so the pipelined evolution
        // must match the reference exactly.
        Scenario {
            name: "regression-path-trailing-iteration".into(),
            graph: unit_graph(Family::Path { vertices: 12 }),
            algo: AlgoSpec::Bfs { root: 0 },
            config: ConfigSpec::small(),
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::full(),
            expect: Expectation::Converge,
            strict_frontier: Some(true),
            synthetic_bug: false,
            mutations: None,
        },
        // A permanently pinned HBM pseudo-channel must wedge the run, the
        // watchdog must blame a unit of the faulted tile, and the stepped
        // and fast-forward modes must produce the identical diagnosis.
        // The pin fires at cycle 20, once requests are in flight on the
        // channel — a pin at cycle 0 lands on an empty channel and traps
        // nothing — and the graph is big enough that tile 0's channel 0
        // is on the critical path by then.
        Scenario {
            name: "wedge-hbm-stall-watchdog".into(),
            graph: unit_graph(Family::Uniform {
                vertices: 400,
                edges: 3_000,
                seed: 4,
            }),
            algo: AlgoSpec::Bfs { root: 0 },
            config: ConfigSpec {
                watchdog_stall_cycles: 2_000,
                ..ConfigSpec::small()
            },
            fault_seed: 1,
            faults: vec![FaultSpec {
                kind: FaultKindSpec::HbmStall {
                    tile: 0,
                    channel: 0,
                    cycles: 0, // forever
                },
                from: 20,
                until: 21,
            }],
            modes: ModeMatrix {
                fast_forward: true,
                event_driven: true,
                recording: true,
                graphdyns: false,
                gunrock: false,
            },
            expect: Expectation::Wedge {
                suspect_contains: "tile 0".into(),
            },
            strict_frontier: None,
            synthetic_bug: false,
            mutations: None,
        },
        // Timing-only faults (a delayed router port, a transient HBM
        // stall) must be absorbed without changing any result, on a
        // weighted R-MAT graph under the destination-oriented mapping.
        Scenario {
            name: "converge-sssp-faulty-delay".into(),
            graph: GraphSpec {
                family: Family::Rmat {
                    vertices: 128,
                    edges: 512,
                    seed: 11,
                },
                symmetrize: false,
                max_weight: 32,
                weight_seed: 5,
                source: GraphSource::Generate,
            },
            algo: AlgoSpec::Sssp { root: 7 },
            config: ConfigSpec {
                pes: 64,
                mapping: Mapping::DestinationOriented,
                ..ConfigSpec::small()
            },
            fault_seed: 13,
            faults: vec![
                FaultSpec {
                    kind: FaultKindSpec::LinkDelay {
                        node: 9,
                        dir: LinkDir::East,
                        cycles: 4,
                    },
                    from: 0,
                    until: 5_000,
                },
                FaultSpec {
                    kind: FaultKindSpec::HbmStall {
                        tile: 1,
                        channel: 1,
                        cycles: 16,
                    },
                    from: 100,
                    until: 400,
                },
            ],
            modes: ModeMatrix::full(),
            expect: Expectation::Converge,
            strict_frontier: None,
            synthetic_bug: false,
            mutations: None,
        },
        // Float-valued properties across every engine: PageRank on a dense
        // uniform graph, with a non-default aggregation depth and a custom
        // HBM latency/jitter point.
        Scenario {
            name: "converge-pagerank-dense".into(),
            graph: unit_graph(Family::Uniform {
                vertices: 100,
                edges: 900,
                seed: 21,
            }),
            algo: AlgoSpec::PageRank { iters: 4 },
            config: ConfigSpec {
                aggregation_registers: 4,
                memory: MemorySpec::Custom {
                    latency_cycles: 24,
                    jitter: 2,
                },
                ..ConfigSpec::small()
            },
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::full(),
            expect: Expectation::Converge,
            strict_frontier: None,
            synthetic_bug: false,
            mutations: None,
        },
        // Busy-dominated pipelined BFS: a dense heavy-tailed graph keeps
        // the scatter machine saturated, so the event-driven core spends
        // the run in sparse stepping rather than whole-device jumps — the
        // regime where per-unit skip bookkeeping could plausibly drift.
        // All ScalaGraph modes must stay bit-identical.
        Scenario {
            name: "converge-event-driven-busy-bfs".into(),
            graph: unit_graph(Family::Rmat {
                vertices: 600,
                edges: 8_000,
                seed: 41,
            }),
            algo: AlgoSpec::Bfs { root: 1 },
            config: ConfigSpec {
                pes: 64,
                aggregation_registers: 8,
                ..ConfigSpec::small()
            },
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::sim_only(),
            expect: Expectation::Converge,
            strict_frontier: None,
            synthetic_bug: false,
            mutations: None,
        },
        // An HBM pseudo-channel pinned forever mid-run: stepped,
        // fast-forward and event-driven execution must all trip the
        // watchdog with the identical cycle, stall count and suspect. The
        // event-driven core replays the skip/step decision stream, so any
        // divergence in its wakeup accounting moves the firing cycle.
        Scenario {
            name: "wedge-event-driven-hbm-stall".into(),
            graph: unit_graph(Family::Uniform {
                vertices: 300,
                edges: 2_400,
                seed: 29,
            }),
            algo: AlgoSpec::Bfs { root: 2 },
            config: ConfigSpec {
                watchdog_stall_cycles: 1_500,
                ..ConfigSpec::small()
            },
            fault_seed: 3,
            faults: vec![FaultSpec {
                kind: FaultKindSpec::HbmStall {
                    tile: 0,
                    channel: 1,
                    cycles: 0, // forever
                },
                from: 40,
                until: 41,
            }],
            modes: ModeMatrix {
                fast_forward: true,
                event_driven: true,
                recording: true,
                graphdyns: false,
                gunrock: false,
            },
            expect: Expectation::Wedge {
                suspect_contains: "tile 0".into(),
            },
            strict_frontier: None,
            synthetic_bug: false,
            mutations: None,
        },
        // Churn-heavy dynamic BFS: four batches each rewiring ~5% of the
        // edges (plus vertex additions and isolations) on a sparse uniform
        // graph. Every batch's incremental BFS repair and spliced CSR must
        // stay bit-identical to a full recompute/rebuild, and every mutated
        // snapshot must still agree across the declared engines. Isolating
        // vertices near the root exercises reachability-loss repair, the
        // hard direction for rooted algorithms.
        Scenario {
            name: "dynamic-churn-bfs-repair".into(),
            graph: unit_graph(Family::Uniform {
                vertices: 256,
                edges: 1_024,
                seed: 61,
            }),
            algo: AlgoSpec::Bfs { root: 3 },
            config: ConfigSpec::small(),
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::sim_only(),
            expect: Expectation::Converge,
            strict_frontier: None,
            synthetic_bug: false,
            mutations: Some(MutationSpec {
                batches: 4,
                insert_edges: 24,
                remove_edges: 24,
                add_vertices: 2,
                isolate_vertices: 1,
                seed: 611,
            }),
        },
        // Delta-PageRank divergence pin: a heavy-tailed R-MAT graph where
        // removing and inserting edges around hubs shifts mass through
        // multi-hop fan-outs. The delta path recomputes only the affected
        // frontier per iteration yet must reproduce the full-recompute
        // trace to the bit at every one of the 4 iterations of every
        // batch — the scenario that catches any under-approximation of the
        // affected set (degree changes redistribute 1/deg shares even when
        // a vertex keeps its rank).
        Scenario {
            name: "dynamic-delta-pagerank-divergence".into(),
            graph: unit_graph(Family::Rmat {
                vertices: 128,
                edges: 512,
                seed: 23,
            }),
            algo: AlgoSpec::PageRank { iters: 4 },
            config: ConfigSpec::small(),
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::sim_only(),
            expect: Expectation::Converge,
            strict_frontier: None,
            synthetic_bug: false,
            mutations: Some(MutationSpec {
                batches: 3,
                insert_edges: 12,
                remove_edges: 12,
                add_vertices: 0,
                isolate_vertices: 1,
                seed: 233,
            }),
        },
    ]
}

fn main() {
    let dir = format!("{}/../../corpus", env!("CARGO_MANIFEST_DIR"));
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for s in corpus() {
        let path = format!("{dir}/{}.json", s.name);
        std::fs::write(&path, s.to_json_string()).expect("write scenario");
        println!("wrote {path}");
    }
}
