//! Wire protocol: requests in, typed responses out.
//!
//! Both transports (line-delimited JSON and HTTP) speak the same
//! vocabulary. A *request* is either a scenario to run or a control verb;
//! a *response* is a single-line JSON object that always says whether it
//! is `ok` and, when it is not, carries a typed error — malformed input
//! never drops a connection silently and never panics the server.
//!
//! The success response splices the memoized result JSON **verbatim**:
//!
//! ```text
//! {"ok":true,"memo_hit":true,"wall_ms":3,"result":{...stored bytes...}}
//! ```
//!
//! so a memo hit is byte-identical to the original run's `result` object by
//! construction — the serialized form is what the memo stores, not a
//! re-rendering of a parsed structure.

use scalagraph_conformance::json::{obj, parse, Json};
use scalagraph_conformance::Scenario;
use scalagraph_runtime::{JobMetrics, JobStatus, Priority};

/// Scenario object keys the strict parser accepts; anything else is a
/// typed `unknown_field` error instead of silent tolerance.
const SCENARIO_KEYS: [&str; 10] = [
    "name",
    "graph",
    "algo",
    "config",
    "fault_seed",
    "faults",
    "modes",
    "expect",
    "strict_frontier",
    "synthetic_bug",
];

/// Envelope keys the jsonl transport accepts.
const ENVELOPE_KEYS: [&str; 4] = ["run", "control", "priority", "deadline_ms"];

/// A typed refusal. `kind` is a stable machine-readable label; `message`
/// says what was wrong with *this* request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Stable error label (`malformed_json`, `oversized`, ...).
    pub kind: &'static str,
    /// Human-readable cause.
    pub message: String,
}

impl ErrorReply {
    /// The request body was not valid JSON.
    pub fn malformed_json(message: impl Into<String>) -> Self {
        ErrorReply {
            kind: "malformed_json",
            message: message.into(),
        }
    }

    /// The JSON was well-formed but not a valid request shape.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ErrorReply {
            kind: "bad_request",
            message: message.into(),
        }
    }

    /// The request carried a key the protocol does not define.
    pub fn unknown_field(key: &str, context: &str) -> Self {
        ErrorReply {
            kind: "unknown_field",
            message: format!("unknown {context} key `{key}`"),
        }
    }

    /// The scenario parsed but failed [`Scenario::validate`].
    pub fn invalid_scenario(message: impl Into<String>) -> Self {
        ErrorReply {
            kind: "invalid_scenario",
            message: message.into(),
        }
    }

    /// The request body exceeded the configured size ceiling.
    pub fn oversized(limit: usize) -> Self {
        ErrorReply {
            kind: "oversized",
            message: format!("request exceeds the {limit}-byte body limit"),
        }
    }

    /// Admission control refused the job: the bounded queue is full.
    pub fn queue_full(capacity: usize) -> Self {
        ErrorReply {
            kind: "queue_full",
            message: format!("admission queue full (capacity {capacity})"),
        }
    }

    /// The daemon is draining and accepts no new work.
    pub fn shutting_down() -> Self {
        ErrorReply {
            kind: "shutting_down",
            message: "server is shutting down".into(),
        }
    }

    /// No such HTTP route.
    pub fn not_found(path: &str) -> Self {
        ErrorReply {
            kind: "not_found",
            message: format!("no route {path}"),
        }
    }

    /// The HTTP route exists but not for this method.
    pub fn method_not_allowed(method: &str, path: &str) -> Self {
        ErrorReply {
            kind: "method_not_allowed",
            message: format!("{method} not allowed on {path}"),
        }
    }

    /// The server lost the job (worker died, channel dropped). Always a
    /// bug, but still a typed response rather than a dropped connection.
    pub fn internal(message: impl Into<String>) -> Self {
        ErrorReply {
            kind: "internal",
            message: message.into(),
        }
    }

    /// The HTTP status line this error maps to.
    pub fn http_status(&self) -> (u16, &'static str) {
        match self.kind {
            "malformed_json" | "bad_request" | "unknown_field" | "invalid_scenario" => {
                (400, "Bad Request")
            }
            "oversized" => (413, "Payload Too Large"),
            "not_found" => (404, "Not Found"),
            "method_not_allowed" => (405, "Method Not Allowed"),
            "queue_full" => (429, "Too Many Requests"),
            "shutting_down" => (503, "Service Unavailable"),
            _ => (500, "Internal Server Error"),
        }
    }

    /// The single-line JSON response body for this error.
    pub fn to_response(&self) -> String {
        obj(vec![
            ("ok", Json::Bool(false)),
            (
                "error",
                obj(vec![
                    ("kind", Json::Str(self.kind.to_string())),
                    ("message", Json::Str(self.message.clone())),
                ]),
            ),
        ])
        .compact()
    }
}

/// A control verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Liveness probe; answers `{"ok":true,"control":"pong"}`.
    Ping,
    /// Answers the metrics text rendering inside a JSON string.
    Metrics,
    /// Starts a graceful drain: queued jobs cancel, in-flight jobs are
    /// cooperatively cancelled, the listener closes.
    Shutdown,
}

/// One parsed request.
#[derive(Debug)]
pub enum Request {
    /// Run a scenario.
    Run {
        /// The (validated) scenario.
        scenario: Box<Scenario>,
        /// Admission lane.
        priority: Priority,
        /// Per-job wall-clock deadline in milliseconds; `None` uses the
        /// server default, `Some(0)` means no deadline.
        deadline_ms: Option<u64>,
    },
    /// A control verb.
    Control(Control),
}

/// Parses a scenario object, refusing unknown top-level keys and
/// scenarios that fail [`Scenario::validate`].
///
/// # Errors
///
/// `unknown_field`, `bad_request`, or `invalid_scenario`.
pub fn parse_scenario_strict(v: &Json) -> Result<Scenario, ErrorReply> {
    let members = match v {
        Json::Obj(members) => members,
        _ => return Err(ErrorReply::bad_request("scenario must be a JSON object")),
    };
    for (key, _) in members {
        if !SCENARIO_KEYS.contains(&key.as_str()) {
            return Err(ErrorReply::unknown_field(key, "scenario"));
        }
    }
    let scenario = Scenario::from_json(v).map_err(ErrorReply::bad_request)?;
    scenario.validate().map_err(ErrorReply::invalid_scenario)?;
    Ok(scenario)
}

/// Parses one jsonl request line: either
/// `{"run": {...scenario...}, "priority"?: "high"|"normal", "deadline_ms"?: n}`
/// or `{"control": "ping"|"metrics"|"shutdown"}`.
///
/// # Errors
///
/// A typed [`ErrorReply`] for every way the line can be wrong.
pub fn parse_jsonl_request(line: &str) -> Result<Request, ErrorReply> {
    let v = parse(line).map_err(ErrorReply::malformed_json)?;
    let members = match &v {
        Json::Obj(members) => members,
        _ => return Err(ErrorReply::bad_request("request must be a JSON object")),
    };
    for (key, _) in members {
        if !ENVELOPE_KEYS.contains(&key.as_str()) {
            return Err(ErrorReply::unknown_field(key, "request"));
        }
    }
    match (v.get("run"), v.get("control")) {
        (Some(_), Some(_)) => Err(ErrorReply::bad_request(
            "request carries both `run` and `control`",
        )),
        (None, None) => Err(ErrorReply::bad_request(
            "request needs a `run` scenario or a `control` verb",
        )),
        (None, Some(c)) => {
            let verb = c
                .as_str()
                .ok_or_else(|| ErrorReply::bad_request("`control` must be a string"))?;
            match verb {
                "ping" => Ok(Request::Control(Control::Ping)),
                "metrics" => Ok(Request::Control(Control::Metrics)),
                "shutdown" => Ok(Request::Control(Control::Shutdown)),
                other => Err(ErrorReply::bad_request(format!(
                    "unknown control verb `{other}`"
                ))),
            }
        }
        (Some(run), None) => {
            let scenario = parse_scenario_strict(run)?;
            let priority = match v.get("priority") {
                None => Priority::Normal,
                Some(p) => match p.as_str() {
                    Some("normal") => Priority::Normal,
                    Some("high") => Priority::High,
                    _ => {
                        return Err(ErrorReply::bad_request(
                            "`priority` must be \"normal\" or \"high\"",
                        ))
                    }
                },
            };
            let deadline_ms = match v.get("deadline_ms") {
                None => None,
                Some(d) => Some(d.as_u64().ok_or_else(|| {
                    ErrorReply::bad_request("`deadline_ms` must be a non-negative integer")
                })?),
            };
            Ok(Request::Run {
                scenario: Box::new(scenario),
                priority,
                deadline_ms,
            })
        }
    }
}

/// The deterministic `result` object for a terminal job status, serialized
/// compactly. For completed runs this string is what the memo stores and
/// replays; everything in it is a pure function of the scenario, so two
/// identical requests produce identical bytes.
pub fn result_json(name: &str, fingerprint: u64, status: &JobStatus) -> String {
    let mut members = vec![
        ("name", Json::Str(name.to_string())),
        ("fingerprint", Json::Str(format!("{fingerprint:#018x}"))),
        ("status", Json::Str(status.label().to_string())),
    ];
    match status {
        JobStatus::Completed {
            metrics:
                JobMetrics {
                    iterations,
                    cycles,
                    traversed_edges,
                },
        } => {
            members.push(("iterations", Json::Int(*iterations)));
            members.push(("cycles", Json::Int(*cycles)));
            members.push(("traversed_edges", Json::Int(*traversed_edges)));
        }
        JobStatus::Failed { reason } => {
            members.push(("reason", Json::Str(reason.to_string())));
        }
        JobStatus::Cancelled { at_cycle } | JobStatus::DeadlineExceeded { at_cycle } => {
            if let Some(cycle) = at_cycle {
                members.push(("at_cycle", Json::Int(*cycle)));
            }
        }
        JobStatus::Rejected { rejection } => {
            members.push(("reason", Json::Str(rejection.to_string())));
        }
    }
    obj(members).compact()
}

/// The success response: splices the stored result bytes verbatim.
pub fn ok_response(result: &str, memo_hit: bool, wall_ms: u64) -> String {
    format!("{{\"ok\":true,\"memo_hit\":{memo_hit},\"wall_ms\":{wall_ms},\"result\":{result}}}")
}

/// A control acknowledgement: `{"ok":true,"control":"<word>"}` with an
/// optional extra payload member.
pub fn control_response(word: &str, extra: Option<(&str, Json)>) -> String {
    let mut members = vec![
        ("ok", Json::Bool(true)),
        ("control", Json::Str(word.to_string())),
    ];
    if let Some((key, value)) = extra {
        members.push((key, value));
    }
    obj(members).compact()
}

/// Extracts the verbatim `result` object bytes from an [`ok_response`]
/// line. Used by tests and the load generator to compare results
/// byte-for-byte without re-serializing.
pub fn extract_result(response: &str) -> Option<&str> {
    response
        .split_once("\"result\":")
        .and_then(|(_, rest)| rest.strip_suffix('}'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalagraph_runtime::FailureReason;

    fn scenario_json() -> String {
        let s = crate::test_support::healthy_scenario("proto-test");
        s.to_json().compact()
    }

    #[test]
    fn a_run_envelope_parses_with_priority_and_deadline() {
        let line = format!(
            "{{\"run\":{},\"priority\":\"high\",\"deadline_ms\":250}}",
            scenario_json()
        );
        match parse_jsonl_request(&line) {
            Ok(Request::Run {
                scenario,
                priority,
                deadline_ms,
            }) => {
                assert_eq!(scenario.name, "proto-test");
                assert_eq!(priority, Priority::High);
                assert_eq!(deadline_ms, Some(250));
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn every_malformed_shape_maps_to_a_typed_error() {
        let cases = [
            ("{not json", "malformed_json"),
            ("[1,2,3]", "bad_request"),
            ("{\"control\":\"reboot\"}", "bad_request"),
            ("{\"bogus\":1}", "unknown_field"),
            ("{}", "bad_request"),
        ];
        for (line, kind) in cases {
            let err = parse_jsonl_request(line).unwrap_err();
            assert_eq!(err.kind, kind, "line {line:?} -> {err:?}");
        }
    }

    #[test]
    fn unknown_scenario_fields_are_refused_not_ignored() {
        let mut body = scenario_json();
        body.insert_str(body.len() - 1, ",\"turbo\":true");
        let line = format!("{{\"run\":{body}}}");
        let err = parse_jsonl_request(&line).unwrap_err();
        assert_eq!(err.kind, "unknown_field");
        assert!(err.message.contains("turbo"), "{}", err.message);
    }

    #[test]
    fn invalid_scenarios_fail_validation_with_the_defect_named() {
        let mut s = crate::test_support::healthy_scenario("bad-root");
        s.algo = scalagraph_conformance::scenario::AlgoSpec::Bfs { root: 9_999 };
        let line = format!("{{\"run\":{}}}", s.to_json().compact());
        let err = parse_jsonl_request(&line).unwrap_err();
        assert_eq!(err.kind, "invalid_scenario");
        assert!(err.message.contains("out of range"), "{}", err.message);
    }

    #[test]
    fn error_kinds_map_to_the_right_http_status() {
        assert_eq!(ErrorReply::malformed_json("x").http_status().0, 400);
        assert_eq!(ErrorReply::oversized(10).http_status().0, 413);
        assert_eq!(ErrorReply::queue_full(4).http_status().0, 429);
        assert_eq!(ErrorReply::shutting_down().http_status().0, 503);
        assert_eq!(ErrorReply::not_found("/x").http_status().0, 404);
        assert_eq!(
            ErrorReply::method_not_allowed("PUT", "/run")
                .http_status()
                .0,
            405
        );
        assert_eq!(ErrorReply::internal("x").http_status().0, 500);
    }

    #[test]
    fn ok_responses_splice_the_result_verbatim_and_round_trip() {
        let status = JobStatus::Completed {
            metrics: JobMetrics {
                iterations: 3,
                cycles: 120,
                traversed_edges: 456,
            },
        };
        let result = result_json("r1", 0xabcd, &status);
        let response = ok_response(&result, true, 7);
        assert_eq!(extract_result(&response), Some(result.as_str()));
        let parsed = parse(&response).expect("response is valid JSON");
        assert_eq!(parsed.req_bool("memo_hit"), Ok(true));
        assert_eq!(
            parsed.req("result").and_then(|r| r.req_u64("cycles")),
            Ok(120)
        );
    }

    #[test]
    fn failed_results_carry_the_reason() {
        let status = JobStatus::Failed {
            reason: FailureReason::Malformed {
                message: "boom".into(),
            },
        };
        let result = result_json("r2", 1, &status);
        let parsed = parse(&result).unwrap();
        assert_eq!(parsed.req_str("status"), Ok("failed"));
        assert!(parsed.req_str("reason").unwrap().contains("boom"));
    }

    #[test]
    fn error_responses_are_single_line_typed_json() {
        let response = ErrorReply::queue_full(16).to_response();
        assert!(!response.contains('\n'));
        let parsed = parse(&response).unwrap();
        assert_eq!(parsed.req_bool("ok"), Ok(false));
        assert_eq!(
            parsed.req("error").and_then(|e| e.req_str("kind")),
            Ok("queue_full")
        );
    }
}
