//! The serving executor: a persistent worker pool behind admission control.
//!
//! Unlike the batch runtime (which runs one finite batch to completion),
//! the executor lives as long as the daemon: connection handlers submit
//! jobs through the same bounded two-lane [`AdmissionQueue`] the batch
//! runtime uses, workers pop until shutdown, and every reply travels back
//! over the job's own channel. Two caches make it a *service*:
//!
//! * the shared [`GraphCache`] resolves each scenario's graph once per
//!   distinct spec across the daemon's whole lifetime;
//! * the [`MemoCache`] replays completed results verbatim for repeated
//!   fingerprints, single-flight, so a thundering herd of identical
//!   requests costs one simulation.
//!
//! The ledger invariant carries over unchanged: every submitted job lands
//! in exactly one terminal bucket
//! (`submitted == completed + failed + cancelled + rejected`), which
//! [`Executor::shutdown`] re-checks after the drain.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use scalagraph::{CancelToken, SimError};
use scalagraph_conformance::Scenario;
use scalagraph_runtime::{
    run_attempt_on, AdmissionQueue, AttemptError, AttemptOverrides, FailureReason, GraphCache,
    JobStatus, Priority,
};
use scalagraph_telemetry::ServiceMetrics;

use crate::memo::{Memo, MemoCache};
use crate::protocol::{result_json, ErrorReply};

/// Executor knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Admission queue capacity across both lanes.
    pub queue_capacity: usize,
    /// Wall-clock deadline for jobs that don't carry their own. `None`
    /// means unbounded.
    pub default_deadline: Option<Duration>,
    /// Supervisor polling cadence for deadline enforcement.
    pub poll_interval: Duration,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            workers: 4,
            queue_capacity: 256,
            default_deadline: Some(Duration::from_secs(10)),
            poll_interval: Duration::from_millis(2),
        }
    }
}

/// What the executor sends back for one submitted job.
#[derive(Debug)]
pub enum RunReply {
    /// The job reached a terminal simulation status; `result` is the
    /// deterministic result object (serialized), `memo_hit` says whether
    /// it was replayed from the memo.
    Done {
        /// Serialized result object (spliced verbatim into the response).
        result: Arc<String>,
        /// Replayed from the memo instead of simulated.
        memo_hit: bool,
        /// Admission-to-reply wall time.
        wall_ms: u64,
    },
    /// The job could not run at all (drained during shutdown).
    Refused(ErrorReply),
}

struct ServeJob {
    scenario: Scenario,
    deadline: Option<Duration>,
    admitted: Instant,
    reply: Sender<RunReply>,
}

struct ActiveJob {
    started: Instant,
    deadline: Option<Duration>,
    token: CancelToken,
}

fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

fn sim_status(e: SimError, metrics: &ServiceMetrics) -> JobStatus {
    match e {
        SimError::Cancelled { cycle, .. } => {
            metrics.job_cancelled();
            JobStatus::Cancelled {
                at_cycle: Some(cycle),
            }
        }
        SimError::DeadlineExceeded { cycle, .. } => {
            metrics.deadline_kill();
            metrics.job_cancelled();
            JobStatus::DeadlineExceeded {
                at_cycle: Some(cycle),
            }
        }
        other => {
            metrics.job_failed();
            JobStatus::Failed {
                reason: FailureReason::Sim {
                    variant: variant_name(&other).to_string(),
                    message: other.to_string(),
                },
            }
        }
    }
}

fn variant_name(e: &SimError) -> &'static str {
    match e {
        SimError::ConfigInvalid { .. } => "ConfigInvalid",
        SimError::ProtocolViolation { .. } => "ProtocolViolation",
        SimError::FaultUnrecoverable { .. } => "FaultUnrecoverable",
        SimError::DeadlockDetected { .. } => "DeadlockDetected",
        SimError::WatchdogStall { .. } => "WatchdogStall",
        SimError::CycleCapExceeded { .. } => "CycleCapExceeded",
        SimError::Cancelled { .. } => "Cancelled",
        SimError::DeadlineExceeded { .. } => "DeadlineExceeded",
        _ => "Unknown",
    }
}

/// The long-lived worker pool. Construct with [`Executor::start`], feed it
/// with [`Executor::submit`], end it with [`Executor::shutdown`].
pub struct Executor {
    config: ExecutorConfig,
    queue: Arc<AdmissionQueue<ServeJob>>,
    graphs: Arc<GraphCache>,
    memo: Arc<MemoCache>,
    metrics: Arc<ServiceMetrics>,
    active: Arc<Mutex<HashMap<u64, ActiveJob>>>,
    stop: Arc<AtomicBool>,
    supervisor_stop: Arc<AtomicBool>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl Executor {
    /// Spawns the worker pool and deadline supervisor.
    pub fn start(
        config: ExecutorConfig,
        metrics: Arc<ServiceMetrics>,
        graphs: Arc<GraphCache>,
        memo: Arc<MemoCache>,
    ) -> Self {
        let queue = Arc::new(AdmissionQueue::new(config.queue_capacity.max(1)));
        let active: Arc<Mutex<HashMap<u64, ActiveJob>>> = Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let supervisor_stop = Arc::new(AtomicBool::new(false));

        let serial = Arc::new(AtomicU64::new(0));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let graphs = Arc::clone(&graphs);
                let memo = Arc::clone(&memo);
                let metrics = Arc::clone(&metrics);
                let active = Arc::clone(&active);
                let stop = Arc::clone(&stop);
                let serial = Arc::clone(&serial);
                std::thread::spawn(move || {
                    while let Some(job) = queue.pop() {
                        metrics.queue_left();
                        let id = serial.fetch_add(1, Ordering::Relaxed);
                        process(job, id, &graphs, &memo, &metrics, &active, &stop);
                    }
                })
            })
            .collect();

        // Supervisor: expires per-job deadlines; once `stop` is set it
        // keeps sweeping cancellation over everything active so even a
        // memo waiter that inherits an abandoned flight mid-drain is
        // cancelled on its first stepped cycle.
        let supervisor = {
            let active = Arc::clone(&active);
            let stop = Arc::clone(&stop);
            let supervisor_stop = Arc::clone(&supervisor_stop);
            let poll = config.poll_interval;
            std::thread::spawn(move || loop {
                if supervisor_stop.load(Ordering::Acquire) {
                    return;
                }
                let draining = stop.load(Ordering::Acquire);
                for job in recover(active.lock()).values() {
                    if draining {
                        job.token.cancel();
                    } else if let Some(deadline) = job.deadline {
                        if job.started.elapsed() >= deadline {
                            job.token.expire();
                        }
                    }
                }
                std::thread::sleep(poll);
            })
        };

        Executor {
            config,
            queue,
            graphs,
            memo,
            metrics,
            active,
            stop,
            supervisor_stop,
            workers: Mutex::new(workers),
            supervisor: Mutex::new(Some(supervisor)),
        }
    }

    /// The shared graph cache.
    pub fn graph_cache(&self) -> &Arc<GraphCache> {
        &self.graphs
    }

    /// The shared memo cache.
    pub fn memo(&self) -> &Arc<MemoCache> {
        &self.memo
    }

    /// Submits one scenario. The terminal [`RunReply`] arrives on `reply`.
    ///
    /// # Errors
    ///
    /// A typed [`ErrorReply`] when admission control refuses the job
    /// (queue full or shutting down); the ledger records it as rejected
    /// and no reply will arrive on the channel.
    pub fn submit(
        &self,
        scenario: Scenario,
        priority: Priority,
        deadline_ms: Option<u64>,
        reply: Sender<RunReply>,
    ) -> Result<(), ErrorReply> {
        self.metrics.job_submitted();
        if self.stop.load(Ordering::Acquire) {
            self.metrics.job_rejected();
            return Err(ErrorReply::shutting_down());
        }
        let deadline = match deadline_ms {
            Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms)),
            None => self.config.default_deadline,
        };
        let job = ServeJob {
            scenario,
            deadline,
            admitted: Instant::now(),
            reply,
        };
        // Gauge before visibility, as in the batch runtime: a worker that
        // pops the job decrements immediately.
        self.metrics.queue_entered();
        match self.queue.try_push(job, priority) {
            Ok(()) => Ok(()),
            Err(rejection) => {
                self.metrics.queue_left();
                self.metrics.job_rejected();
                Err(match rejection {
                    scalagraph_runtime::Rejection::QueueFull { capacity } => {
                        ErrorReply::queue_full(capacity)
                    }
                    scalagraph_runtime::Rejection::ShuttingDown => ErrorReply::shutting_down(),
                })
            }
        }
    }

    /// Graceful drain: refuses new work, turns everything still queued
    /// into cancelled refusals, cooperatively cancels in-flight jobs, and
    /// joins every thread. Idempotent — a second call finds nothing left
    /// to drain or join. The final counters are readable from the shared
    /// [`ServiceMetrics`] afterwards.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        // Everything still queued drains into the cancelled bucket with a
        // typed refusal — never a silently dropped reply channel.
        for job in self.queue.drain() {
            self.metrics.queue_left();
            self.metrics.job_cancelled();
            let _ = job
                .reply
                .send(RunReply::Refused(ErrorReply::shutting_down()));
        }
        // The supervisor sweeps cancellation over active jobs until all
        // workers have exited their pop loop (queue closed by drain).
        let workers: Vec<JoinHandle<()>> = recover(self.workers.lock()).drain(..).collect();
        for worker in workers {
            let _ = worker.join();
        }
        self.supervisor_stop.store(true, Ordering::Release);
        let supervisor = recover(self.supervisor.lock()).take();
        if let Some(supervisor) = supervisor {
            let _ = supervisor.join();
        }
        debug_assert!(recover(self.active.lock()).is_empty());
    }
}

/// Runs one job to a terminal reply on the calling worker thread.
fn process(
    job: ServeJob,
    id: u64,
    graphs: &GraphCache,
    memo: &MemoCache,
    metrics: &ServiceMetrics,
    active: &Mutex<HashMap<u64, ActiveJob>>,
    stop: &AtomicBool,
) {
    let fingerprint = job.scenario.fingerprint();
    let wall_ms = |admitted: Instant| admitted.elapsed().as_millis() as u64;

    // Memo first: identical completed work is replayed verbatim without
    // touching the graph cache or a simulator. `begin` blocks while an
    // identical request is in flight and returns its published result.
    let guard = match memo.begin(fingerprint) {
        Memo::Hit(result) => {
            metrics.memo_hit();
            metrics.job_completed();
            let _ = job.reply.send(RunReply::Done {
                result,
                memo_hit: true,
                wall_ms: wall_ms(job.admitted),
            });
            return;
        }
        Memo::Miss(guard) => {
            metrics.memo_miss();
            guard
        }
    };

    // A drain that started while this job sat in the queue (or while it
    // waited out another flight) cancels it before any work is spent.
    if stop.load(Ordering::Acquire) {
        metrics.job_cancelled();
        let _ = job.reply.send(RunReply::Done {
            result: Arc::new(result_json(
                &job.scenario.name,
                fingerprint,
                &JobStatus::Cancelled { at_cycle: None },
            )),
            memo_hit: false,
            wall_ms: wall_ms(job.admitted),
        });
        return;
    }

    // Graph through the shared cache: one build per distinct spec for the
    // daemon's lifetime.
    let graph = match graphs.fetch(&job.scenario.graph) {
        Ok(fetched) => {
            if fetched.built {
                metrics.graph_cache_miss();
            } else {
                metrics.graph_cache_hit();
            }
            fetched.graph
        }
        Err(message) => {
            metrics.job_failed();
            let status = JobStatus::Failed {
                reason: FailureReason::Malformed { message },
            };
            let _ = job.reply.send(RunReply::Done {
                result: Arc::new(result_json(&job.scenario.name, fingerprint, &status)),
                memo_hit: false,
                wall_ms: wall_ms(job.admitted),
            });
            return;
        }
    };

    let token = CancelToken::new();
    recover(active.lock()).insert(
        id,
        ActiveJob {
            started: Instant::now(),
            deadline: job.deadline,
            token: token.clone(),
        },
    );

    let scenario = &job.scenario;
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        run_attempt_on(scenario, &graph, AttemptOverrides::default(), &token)
    }));

    recover(active.lock()).remove(&id);

    let (status, publish) = match attempt {
        Ok(Ok(job_metrics)) => {
            metrics.job_completed();
            (
                JobStatus::Completed {
                    metrics: job_metrics,
                },
                true,
            )
        }
        Ok(Err(AttemptError::Malformed(message))) => {
            metrics.job_failed();
            (
                JobStatus::Failed {
                    reason: FailureReason::Malformed { message },
                },
                false,
            )
        }
        Ok(Err(AttemptError::Sim(e))) => (sim_status(e, metrics), false),
        Err(payload) => {
            metrics.panic_contained();
            metrics.job_failed();
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            (
                JobStatus::Failed {
                    reason: FailureReason::Panicked { message },
                },
                false,
            )
        }
    };

    let rendered = result_json(&job.scenario.name, fingerprint, &status);
    let result = if publish {
        // Only completed outcomes are sound to memoize: they are pure
        // functions of the scenario. Cancelled / deadline outcomes depend
        // on wall-clock timing; failures could be memoized but are rare
        // enough that re-deriving them keeps the policy simple.
        guard.publish(rendered)
    } else {
        drop(guard); // abandon the flight; waiters take over
        Arc::new(rendered)
    };
    let _ = job.reply.send(RunReply::Done {
        result,
        memo_hit: false,
        wall_ms: wall_ms(job.admitted),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::healthy_scenario;
    use scalagraph_conformance::scenario::{Family, FaultKindSpec, FaultSpec};
    use std::sync::mpsc::channel;

    fn start(config: ExecutorConfig) -> (Executor, Arc<ServiceMetrics>) {
        let metrics = Arc::new(ServiceMetrics::new());
        let executor = Executor::start(
            config,
            Arc::clone(&metrics),
            Arc::new(GraphCache::with_default_capacity()),
            Arc::new(MemoCache::with_default_capacity()),
        );
        (executor, metrics)
    }

    #[test]
    fn identical_concurrent_requests_share_one_simulation() {
        let (executor, metrics) = start(ExecutorConfig::default());
        let receivers: Vec<_> = (0..8)
            .map(|_| {
                let (tx, rx) = channel();
                executor
                    .submit(healthy_scenario("same"), Priority::Normal, None, tx)
                    .unwrap();
                rx
            })
            .collect();
        let replies: Vec<RunReply> = receivers
            .into_iter()
            .map(|rx| rx.recv().expect("reply arrives"))
            .collect();
        let mut memo_hits = 0;
        let mut first: Option<Arc<String>> = None;
        for reply in &replies {
            match reply {
                RunReply::Done {
                    result, memo_hit, ..
                } => {
                    if *memo_hit {
                        memo_hits += 1;
                    }
                    if let Some(prev) = &first {
                        assert_eq!(**prev, **result, "byte-identical results");
                    } else {
                        first = Some(Arc::clone(result));
                    }
                }
                other => panic!("expected done, got {other:?}"),
            }
        }
        assert_eq!(memo_hits, 7, "one flight, seven memo replays");
        assert_eq!(executor.graph_cache().stats().builds, 1);
        executor.shutdown();
        let counters = metrics.snapshot();
        assert!(counters.balanced(), "{counters}");
        assert_eq!(counters.completed, 8);
        assert_eq!(counters.memo_hits, 7);
        assert_eq!(counters.memo_misses, 1);
    }

    #[test]
    fn mutation_schedules_memoize_per_schedule_but_share_the_base_graph() {
        use scalagraph_conformance::MutationSpec;
        let with_schedule = |seed: u64| {
            let mut s = healthy_scenario("dynamic-memo");
            s.mutations = Some(MutationSpec {
                batches: 2,
                insert_edges: 4,
                remove_edges: 4,
                add_vertices: 0,
                isolate_vertices: 0,
                seed,
            });
            s
        };
        let (executor, metrics) = start(ExecutorConfig::default());
        let run = |s: Scenario| {
            let (tx, rx) = channel();
            executor.submit(s, Priority::Normal, None, tx).unwrap();
            match rx.recv().expect("reply arrives") {
                RunReply::Done {
                    result, memo_hit, ..
                } => (result, memo_hit),
                other => panic!("expected done, got {other:?}"),
            }
        };
        // Identical scenario + schedule: second run replays the memo.
        let (first, hit_first) = run(with_schedule(11));
        let (replay, hit_replay) = run(with_schedule(11));
        assert!(!hit_first);
        assert!(hit_replay, "identical schedule must memo-hit");
        assert_eq!(*first, *replay, "replayed bytes are identical");
        // Same base graph, different schedule: distinct fingerprint, so a
        // fresh flight — a stale replay here would be unsound.
        let (other, hit_other) = run(with_schedule(12));
        assert!(!hit_other, "a different schedule must not memo-hit");
        assert_ne!(*first, *other, "different schedule, different result");
        // All three runs resolved one shared base CSR from the cache; the
        // schedule is applied per attempt, never to the cached graph.
        assert_eq!(executor.graph_cache().stats().builds, 1);
        executor.shutdown();
        let counters = metrics.snapshot();
        assert!(counters.balanced(), "{counters}");
        assert_eq!(counters.memo_hits, 1);
        assert_eq!(counters.memo_misses, 2);
    }

    #[test]
    fn queue_overflow_is_a_typed_rejection_and_still_balances() {
        let (executor, metrics) = start(ExecutorConfig {
            workers: 1,
            queue_capacity: 1,
            ..ExecutorConfig::default()
        });
        let mut receivers = Vec::new();
        let mut rejected = 0u64;
        for i in 0..12 {
            let (tx, rx) = channel();
            // Distinct names keep fingerprints distinct so nothing memoizes.
            let mut s = healthy_scenario(&format!("burst-{i}"));
            s.fault_seed = i; // distinct fingerprints
            match executor.submit(s, Priority::Normal, None, tx) {
                Ok(()) => receivers.push(rx),
                Err(err) => {
                    assert_eq!(err.kind, "queue_full");
                    rejected += 1;
                }
            }
        }
        for rx in receivers {
            assert!(matches!(rx.recv(), Ok(RunReply::Done { .. })));
        }
        executor.shutdown();
        let counters = metrics.snapshot();
        assert!(counters.balanced(), "{counters}");
        assert_eq!(counters.rejected, rejected);
        assert!(rejected > 0, "capacity 1 under a 12-burst must reject");
    }

    #[test]
    fn shutdown_mid_drain_closes_the_ledger() {
        // One worker grinding a wedge; several jobs queued behind it. The
        // drain must cancel the runner, refuse the queued work, and leave
        // a balanced ledger.
        let (executor, metrics) = start(ExecutorConfig {
            workers: 1,
            queue_capacity: 64,
            default_deadline: None,
            ..ExecutorConfig::default()
        });
        let mut wedge = healthy_scenario("wedge");
        wedge.graph.family = Family::Uniform {
            vertices: 400,
            edges: 3000,
            seed: 4,
        };
        wedge.config.watchdog_stall_cycles = 0;
        wedge.modes.fast_forward = false;
        wedge.faults = vec![FaultSpec {
            kind: FaultKindSpec::HbmStall {
                tile: 0,
                channel: 0,
                cycles: 0,
            },
            from: 20,
            until: 21,
        }];
        wedge.fault_seed = 1;

        let (wedge_tx, wedge_rx) = channel();
        executor
            .submit(wedge, Priority::Normal, Some(0), wedge_tx)
            .unwrap();
        let queued: Vec<_> = (0..5)
            .map(|i| {
                let (tx, rx) = channel();
                executor
                    .submit(
                        healthy_scenario(&format!("queued-{i}")),
                        Priority::Normal,
                        None,
                        tx,
                    )
                    .unwrap();
                rx
            })
            .collect();
        // Let the wedge actually start spinning before draining.
        std::thread::sleep(Duration::from_millis(50));
        executor.shutdown();

        match wedge_rx.recv().expect("wedge reply") {
            RunReply::Done { result, .. } => {
                assert!(
                    result.contains("\"status\":\"cancelled\""),
                    "wedge cancelled cooperatively: {result}"
                );
            }
            other => panic!("wedge should cancel, got {other:?}"),
        }
        let mut refused = 0;
        for rx in queued {
            match rx.recv().expect("queued reply") {
                RunReply::Refused(err) => {
                    assert_eq!(err.kind, "shutting_down");
                    refused += 1;
                }
                RunReply::Done { result, .. } => {
                    // A fast worker may legitimately finish (or cancel) a
                    // queued job before the drain lands.
                    assert!(result.contains("\"status\":"), "{result}");
                }
            }
        }
        let counters = metrics.snapshot();
        assert!(counters.balanced(), "ledger closes mid-drain: {counters}");
        assert!(refused > 0 || counters.cancelled > 0, "{counters}");
        assert_eq!(counters.submitted, 6);
    }

    #[test]
    fn submissions_after_shutdown_start_are_rejected() {
        let (executor, metrics) = start(ExecutorConfig::default());
        executor.stop.store(true, Ordering::Release);
        let (tx, _rx) = channel();
        let err = executor
            .submit(healthy_scenario("late"), Priority::Normal, None, tx)
            .unwrap_err();
        assert_eq!(err.kind, "shutting_down");
        executor.shutdown();
        assert!(metrics.snapshot().balanced());
    }

    #[test]
    fn a_deadline_kill_is_not_memoized_but_a_completion_is() {
        let (executor, metrics) = start(ExecutorConfig {
            workers: 2,
            ..ExecutorConfig::default()
        });
        // First: a healthy run with an impossible deadline -> deadline kill.
        let (tx, rx) = channel();
        let mut s = healthy_scenario("dl");
        s.graph.family = Family::Uniform {
            vertices: 2048,
            edges: 16_384,
            seed: 5,
        };
        executor
            .submit(s.clone(), Priority::Normal, Some(1), tx)
            .unwrap();
        let first = match rx.recv().unwrap() {
            RunReply::Done {
                result, memo_hit, ..
            } => {
                assert!(!memo_hit);
                result
            }
            other => panic!("{other:?}"),
        };
        // Timing decides whether the tiny deadline actually fired; either
        // way the second, undeadlined run must simulate (no memo of a
        // cancelled result) unless the first genuinely completed.
        let (tx2, rx2) = channel();
        executor.submit(s, Priority::Normal, Some(0), tx2).unwrap();
        let second = match rx2.recv().unwrap() {
            RunReply::Done {
                result, memo_hit, ..
            } => {
                assert!(result.contains("\"status\":\"completed\""), "{result}");
                (result, memo_hit)
            }
            other => panic!("{other:?}"),
        };
        if first.contains("\"status\":\"completed\"") {
            assert!(second.1, "a completed first run memoizes");
        } else {
            assert!(!second.1, "a killed first run must not memoize");
        }
        executor.shutdown();
        assert!(metrics.snapshot().balanced());
    }
}
