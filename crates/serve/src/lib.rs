//! Simulation-as-a-service: a long-lived daemon in front of the ScalaGraph
//! simulator.
//!
//! The batch runtime ([`scalagraph_runtime`]) answers "run these N
//! scenarios resiliently"; this crate answers "keep running scenarios
//! forever, for many concurrent clients, without redoing work":
//!
//! | layer | module | what it adds |
//! |-------|--------|--------------|
//! | transports | [`server`] + [`http`] | one port speaking line-delimited JSON *and* HTTP/1.1, sniffed per connection |
//! | protocol | [`protocol`] | strict parsing with typed error responses — malformed input never drops a connection or panics the daemon |
//! | execution | [`executor`] | a persistent worker pool behind the runtime's bounded two-lane admission queue |
//! | graph sharing | [`scalagraph_runtime::GraphCache`] | one CSR build per distinct graph spec for the daemon's lifetime |
//! | memoization | [`memo`] | completed results replayed byte-for-byte for identical scenario fingerprints, single-flight |
//!
//! The ledger invariant of the batch runtime
//! (`submitted == completed + failed + cancelled + rejected`) carries over
//! to the daemon and is re-checked at shutdown, *including* a shutdown that
//! lands mid-drain with jobs queued and simulations in flight.
//!
//! Two binaries ship with the crate: `scalagraph-serve` (the daemon) and
//! `loadgen` (a corpus-replaying load generator that writes
//! `BENCH_serve.json`).

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod executor;
pub mod http;
pub mod memo;
pub mod protocol;
pub mod server;

pub use executor::{Executor, ExecutorConfig, RunReply};
pub use memo::{Memo, MemoCache, MemoGuard, MemoStats};
pub use protocol::{Control, ErrorReply, Request};
pub use server::{render_metrics_text, ServeConfig, Server};

#[cfg(test)]
pub(crate) mod test_support {
    use scalagraph_conformance::scenario::{AlgoSpec, ConfigSpec, Expectation, Family, ModeMatrix};
    use scalagraph_conformance::{GraphSource, GraphSpec, Scenario};

    /// A small scenario that converges quickly; the standard fixture for
    /// serve-side unit tests.
    pub fn healthy_scenario(name: &str) -> Scenario {
        Scenario {
            name: name.into(),
            graph: GraphSpec {
                family: Family::Uniform {
                    vertices: 64,
                    edges: 256,
                    seed: 7,
                },
                symmetrize: false,
                max_weight: 0,
                weight_seed: 0,
                source: GraphSource::Generate,
            },
            algo: AlgoSpec::Bfs { root: 0 },
            config: ConfigSpec::small(),
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::sim_only(),
            expect: Expectation::Converge,
            strict_frontier: None,
            synthetic_bug: false,
            mutations: None,
        }
    }
}
