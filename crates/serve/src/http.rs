//! Minimal HTTP/1.1: just enough for `POST /run`, `GET /metrics`, and
//! `POST /shutdown` over `std::net` — no external dependency, no keep-alive
//! (every response closes the connection), no chunked encoding.
//!
//! Parsing is defensive the same way the jsonl transport is: an oversized
//! or malformed request becomes a *typed* error the server answers before
//! closing, never a silent drop or a panic.

use std::io::{Read, Write};

/// One parsed request.
#[derive(Debug)]
pub struct HttpRequest {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Request path (`/run`), query string stripped.
    pub path: String,
    /// Decoded body (empty for bodyless requests).
    pub body: String,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The head or body violated the framing rules.
    Malformed(String),
    /// Declared or actual body size exceeded the configured ceiling.
    Oversized {
        /// Body bytes the peer still has in flight (declared but unread).
        /// The caller should [`drain`] them after responding: closing a
        /// socket with unread data pending sends an RST that can destroy
        /// the error response before the peer reads it.
        unread: usize,
    },
    /// The peer closed or the socket failed mid-request.
    Io(std::io::Error),
}

/// Reads one full request from `head_and_rest` (the bytes already buffered
/// by the protocol sniffer, typically the first line) plus the stream.
///
/// # Errors
///
/// [`HttpError`] describing the refusal; the caller still owes the peer a
/// typed HTTP error response for the non-IO variants.
pub fn read_request(
    already: &[u8],
    stream: &mut impl Read,
    max_body: usize,
) -> Result<HttpRequest, HttpError> {
    // Accumulate the head (request line + headers) until CRLFCRLF.
    let head_cap = 16 * 1024;
    let mut buf: Vec<u8> = already.to_vec();
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > head_cap {
            return Err(HttpError::Malformed("request head exceeds 16 KiB".into()));
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before the end of the request head".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("unparseable Content-Length".into()))?;
            }
        }
    }
    if content_length > max_body {
        let buffered = buf.len().saturating_sub(head_end + 4);
        return Err(HttpError::Oversized {
            unread: content_length.saturating_sub(buffered),
        });
    }

    // Body: what trailed the head in the buffer, then the stream.
    let mut body_bytes: Vec<u8> = buf[head_end + 4..].to_vec();
    if body_bytes.len() > content_length {
        return Err(HttpError::Malformed(
            "body longer than Content-Length".into(),
        ));
    }
    while body_bytes.len() < content_length {
        let mut chunk = vec![0u8; (content_length - body_bytes.len()).min(64 * 1024)];
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before the end of the body".into(),
            ));
        }
        body_bytes.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(body_bytes)
        .map_err(|_| HttpError::Malformed("body is not valid UTF-8".into()))?;

    Ok(HttpRequest { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads and discards up to `unread` body bytes, bounded by a retry budget
/// on read timeouts so a stalled peer cannot pin the handler.
pub fn drain(stream: &mut impl Read, mut unread: usize) {
    let mut timeouts = 0u32;
    let mut chunk = [0u8; 64 * 1024];
    while unread > 0 {
        let want = unread.min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return,
            Ok(n) => unread -= n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                timeouts += 1;
                if timeouts > 100 {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Writes one `Connection: close` response and returns the bytes written
/// (for the egress counter).
///
/// # Errors
///
/// The underlying socket write error.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<u64> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    Ok((head.len() + body.len()) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(raw: &str, max_body: usize) -> Result<HttpRequest, HttpError> {
        let mut rest = raw.as_bytes();
        read_request(&[], &mut rest, max_body)
    }

    #[test]
    fn a_post_with_body_parses() {
        let raw = "POST /run?trace=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\":123}";
        let req = request(raw, 1024).expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run", "query string stripped");
        assert_eq!(req.body, "{\"a\":123}");
    }

    #[test]
    fn a_bodyless_get_parses() {
        let req = request("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", 1024).expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.body, "");
    }

    #[test]
    fn an_oversized_declared_body_is_refused_before_reading_it() {
        let raw = "POST /run HTTP/1.1\r\nContent-Length: 99999\r\n\r\n";
        assert!(matches!(
            request(raw, 1024),
            Err(HttpError::Oversized { unread: 99999 })
        ));
    }

    #[test]
    fn truncated_requests_are_malformed() {
        assert!(matches!(
            request(
                "POST /run HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
                1024
            ),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            request("POST /run\r\n\r\n", 1024),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn sniffed_prefix_bytes_are_part_of_the_request() {
        // The server sniffs the transport by reading some bytes first;
        // they must be prepended, not lost.
        let raw = "POST /run HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let (first, rest) = raw.as_bytes().split_at(10);
        let mut rest_reader = rest;
        let req = read_request(first, &mut rest_reader, 1024).expect("parses");
        assert_eq!(req.body, "ok");
    }

    #[test]
    fn responses_are_framed_with_length_and_close() {
        let mut out = Vec::new();
        let n = write_response(&mut out, 200, "OK", "application/json", "{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        assert_eq!(n as usize, text.len());
    }
}
