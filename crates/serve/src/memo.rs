//! Scenario-result memoization with single-flight execution.
//!
//! Simulation runs are deterministic: two scenarios with the same
//! [`fingerprint`](scalagraph_conformance::Scenario::fingerprint) run the
//! same graph, algorithm, configuration, and fault schedule, and therefore
//! produce the same result — so a completed result can be replayed
//! *verbatim* for every later identical request. The cache stores the
//! serialized result JSON (not a parsed structure), which makes memoized
//! replies byte-identical to the original by construction.
//!
//! Soundness boundary: only **completed** runs may be published. Cancelled
//! and deadline-killed outcomes depend on wall-clock timing (which cycle the
//! token was observed on), so callers must drop their [`MemoGuard`] instead
//! of publishing — the next identical request simply runs again.
//!
//! Execution is single-flight, like the graph cache: the first request for
//! a fingerprint gets a [`MemoGuard`] and runs the simulation; concurrent
//! identical requests park on a condvar and receive the published JSON. If
//! the flight ends without a publishable result (failure, cancellation,
//! panic), dropping the guard wakes the waiters and the next one becomes
//! the new flight — nobody deadlocks on an abandoned entry.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Counters describing the memo cache since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Requests answered from a stored result (including waiters that
    /// joined an in-flight run).
    pub hits: u64,
    /// Requests that had to run the simulation.
    pub misses: u64,
    /// Results published.
    pub inserted: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Flights that ended without publishing (failed / cancelled runs).
    pub abandoned: u64,
}

enum Slot {
    /// A flight is running this fingerprint right now; wait, don't run.
    InFlight,
    /// The stored result, with an LRU stamp.
    Ready { json: Arc<String>, last_used: u64 },
}

struct State {
    slots: HashMap<u64, Slot>,
    tick: u64,
    stats: MemoStats,
}

/// A bounded, thread-safe, single-flight memo of completed result JSON,
/// keyed by scenario fingerprint.
pub struct MemoCache {
    state: Mutex<State>,
    published: Condvar,
    capacity: usize,
}

/// What [`MemoCache::begin`] resolved for a fingerprint.
pub enum Memo<'a> {
    /// A stored (or just-published) result; replay it verbatim.
    Hit(Arc<String>),
    /// This caller owns the flight: run the simulation, then either
    /// [`MemoGuard::publish`] a completed result or drop the guard.
    Miss(MemoGuard<'a>),
}

/// Exclusive right to run one fingerprint's simulation. Dropping the guard
/// without publishing abandons the flight and wakes any waiters.
pub struct MemoGuard<'a> {
    cache: &'a MemoCache,
    fingerprint: u64,
    published: bool,
}

fn recover<'a>(
    r: Result<MutexGuard<'a, State>, PoisonError<MutexGuard<'a, State>>>,
) -> MutexGuard<'a, State> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl MemoCache {
    /// A memo holding at most `capacity` results (minimum 1).
    pub fn new(capacity: usize) -> Self {
        MemoCache {
            state: Mutex::new(State {
                slots: HashMap::new(),
                tick: 0,
                stats: MemoStats::default(),
            }),
            published: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// A memo with the default capacity (1024 results).
    pub fn with_default_capacity() -> Self {
        MemoCache::new(1024)
    }

    /// Resolves `fingerprint` to a stored result or the right to produce
    /// one. Blocks while another thread's flight for the same fingerprint
    /// is in progress.
    pub fn begin(&self, fingerprint: u64) -> Memo<'_> {
        let mut state = recover(self.state.lock());
        loop {
            state.tick += 1;
            let tick = state.tick;
            match state.slots.get_mut(&fingerprint) {
                Some(Slot::Ready { json, last_used }) => {
                    *last_used = tick;
                    let json = Arc::clone(json);
                    state.stats.hits += 1;
                    return Memo::Hit(json);
                }
                Some(Slot::InFlight) => {
                    state = recover(self.published.wait(state));
                }
                None => {
                    state.slots.insert(fingerprint, Slot::InFlight);
                    state.stats.misses += 1;
                    return Memo::Miss(MemoGuard {
                        cache: self,
                        fingerprint,
                        published: false,
                    });
                }
            }
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> MemoStats {
        recover(self.state.lock()).stats
    }

    /// Stored results currently cached (in-flight slots excluded).
    pub fn len(&self) -> usize {
        recover(self.state.lock())
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }

    /// Whether the memo holds no stored result.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn publish(&self, fingerprint: u64, json: Arc<String>) {
        let mut state = recover(self.state.lock());
        state.tick += 1;
        let tick = state.tick;
        state.slots.insert(
            fingerprint,
            Slot::Ready {
                json,
                last_used: tick,
            },
        );
        state.stats.inserted += 1;
        // LRU eviction; never evict an in-flight slot (a waiter is parked
        // on it) or the entry just published.
        while state.slots.len() > self.capacity {
            let victim = state
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } if *k != fingerprint => Some((*last_used, *k)),
                    _ => None,
                })
                .min_by_key(|(last_used, _)| *last_used);
            match victim {
                Some((_, key)) => {
                    state.slots.remove(&key);
                    state.stats.evictions += 1;
                }
                None => break,
            }
        }
        drop(state);
        self.published.notify_all();
    }

    fn abandon(&self, fingerprint: u64) {
        let mut state = recover(self.state.lock());
        if matches!(state.slots.get(&fingerprint), Some(Slot::InFlight)) {
            state.slots.remove(&fingerprint);
        }
        state.stats.abandoned += 1;
        drop(state);
        self.published.notify_all();
    }
}

impl MemoGuard<'_> {
    /// The fingerprint this flight owns.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Publishes a **completed** run's serialized result and returns the
    /// shared copy waiters and future hits will receive. Publishing
    /// anything other than a completed, deterministic result breaks the
    /// memo's soundness contract — see the module docs.
    pub fn publish(mut self, json: String) -> Arc<String> {
        let json = Arc::new(json);
        self.published = true;
        self.cache.publish(self.fingerprint, Arc::clone(&json));
        json
    }
}

impl Drop for MemoGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.cache.abandon(self.fingerprint);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_hit_returns_the_same_bytes() {
        let memo = MemoCache::new(8);
        let guard = match memo.begin(42) {
            Memo::Miss(g) => g,
            Memo::Hit(_) => panic!("empty memo cannot hit"),
        };
        let stored = guard.publish("{\"x\":1}".to_string());
        match memo.begin(42) {
            Memo::Hit(json) => {
                assert_eq!(*json, *stored);
                assert!(Arc::ptr_eq(&json, &stored), "same allocation, same bytes");
            }
            Memo::Miss(_) => panic!("published result must hit"),
        }
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserted), (1, 1, 1));
    }

    #[test]
    fn an_abandoned_flight_hands_the_miss_to_the_next_caller() {
        let memo = MemoCache::new(8);
        {
            let _guard = match memo.begin(7) {
                Memo::Miss(g) => g,
                Memo::Hit(_) => panic!(),
            };
            // Dropped without publishing: the failed run is not memoized.
        }
        let second = memo.begin(7);
        assert!(matches!(second, Memo::Miss(_)));
        // Stats before the second guard drops: one abandonment so far.
        let stats = memo.stats();
        assert_eq!(stats.abandoned, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.inserted, 0);
    }

    #[test]
    fn concurrent_identical_requests_run_exactly_one_flight() {
        let memo = MemoCache::new(8);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    scope.spawn(|| match memo.begin(99) {
                        Memo::Hit(json) => (false, json),
                        Memo::Miss(guard) => {
                            // Simulate a slow run so waiters actually park.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            (true, guard.publish("{\"r\":9}".to_string()))
                        }
                    })
                })
                .collect();
            let results: Vec<(bool, Arc<String>)> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_eq!(
                results.iter().filter(|(ran, _)| *ran).count(),
                1,
                "single flight"
            );
            for (_, json) in &results {
                assert_eq!(**json, "{\"r\":9}");
            }
        });
        let stats = memo.stats();
        assert_eq!((stats.misses, stats.hits), (1, 15));
    }

    #[test]
    fn waiters_of_an_abandoned_flight_wake_and_take_over() {
        let memo = MemoCache::new(8);
        std::thread::scope(|scope| {
            let results: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| match memo.begin(5) {
                        Memo::Hit(json) => (*json).clone(),
                        Memo::Miss(guard) => {
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            if memo.stats().abandoned == 0 {
                                drop(guard); // first flight fails
                                "abandoned".to_string()
                            } else {
                                (*guard.publish("{\"ok\":true}".to_string())).clone()
                            }
                        }
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect();
            assert_eq!(
                results.iter().filter(|r| *r == "abandoned").count(),
                1,
                "exactly one failed flight: {results:?}"
            );
            for r in results.iter().filter(|r| *r != "abandoned") {
                assert_eq!(r, "{\"ok\":true}");
            }
        });
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let memo = MemoCache::new(2);
        for fp in [1u64, 2, 3] {
            if let Memo::Miss(g) = memo.begin(fp) {
                g.publish(format!("{{\"fp\":{fp}}}"));
            }
            if fp == 2 {
                // Touch 1 so 2 becomes the LRU victim when 3 arrives.
                assert!(matches!(memo.begin(1), Memo::Hit(_)));
            }
        }
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.stats().evictions, 1);
        assert!(matches!(memo.begin(1), Memo::Hit(_)), "1 survived");
        assert!(matches!(memo.begin(3), Memo::Hit(_)), "3 survived");
        assert!(matches!(memo.begin(2), Memo::Miss(_)), "2 was evicted");
    }
}
