//! `scalagraph-serve` — the simulation-as-a-service daemon.
//!
//! ```text
//! scalagraph-serve [options]
//!   --addr <host:port>        bind address                     [127.0.0.1:7451]
//!   --workers <n>             simulation worker threads        [4]
//!   --queue-cap <n>           admission queue capacity         [256]
//!   --deadline-ms <ms>        default per-job deadline, 0=none [10000]
//!   --max-body-bytes <n>      request body / line ceiling      [1048576]
//!   --graph-cache <n>         graph cache capacity (specs)     [64]
//!   --graph-cache-bytes <n>   graph cache byte budget, 0=off   [0]
//!   --memo-cap <n>            memo capacity (fingerprints)     [1024]
//!   --summary-secs <n>        stderr metrics cadence, 0=off    [10]
//! ```
//!
//! One port speaks two protocols, sniffed per connection:
//!
//! * **jsonl** — each line is `{"run": {scenario}, "priority"?: "high",
//!   "deadline_ms"?: n}` or `{"control": "ping"|"metrics"|"shutdown"}`;
//!   each response is one line of JSON.
//! * **HTTP/1.1** — `POST /run` with a bare scenario body, `GET /metrics`
//!   (text), `POST /shutdown`.
//!
//! The daemon exits after a graceful drain triggered by a `shutdown`
//! request on either transport; its exit code reports the final ledger
//! (0 balanced, 1 unbalanced).

use std::process::exit;
use std::time::Duration;

use scalagraph_serve::ServeConfig;

fn usage_and_exit(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    eprintln!(
        "{}",
        include_str!("scalagraph-serve.rs")
            .lines()
            .skip(2)
            .take_while(|l| l.starts_with("//!"))
            .map(|l| l.trim_start_matches("//! ").trim_start_matches("//!"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    exit(2)
}

fn parse_config() -> ServeConfig {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7451".into(),
        summary_every: Some(Duration::from_secs(10)),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage_and_exit(&format!("{a} needs a value")))
        };
        let parse_u64 = |flag: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| usage_and_exit(&format!("{flag} needs a non-negative integer")))
        };
        match a.as_str() {
            "--addr" => config.addr = value(),
            "--workers" => config.workers = parse_u64("--workers", value()).max(1) as usize,
            "--queue-cap" => {
                config.queue_capacity = parse_u64("--queue-cap", value()).max(1) as usize
            }
            "--deadline-ms" => config.default_deadline_ms = parse_u64("--deadline-ms", value()),
            "--max-body-bytes" => {
                config.max_body_bytes = parse_u64("--max-body-bytes", value()).max(1024) as usize
            }
            "--graph-cache" => {
                config.graph_cache_capacity = parse_u64("--graph-cache", value()).max(1) as usize
            }
            "--graph-cache-bytes" => {
                config.graph_cache_bytes = parse_u64("--graph-cache-bytes", value())
            }
            "--memo-cap" => config.memo_capacity = parse_u64("--memo-cap", value()).max(1) as usize,
            "--summary-secs" => {
                let secs = parse_u64("--summary-secs", value());
                config.summary_every = (secs > 0).then(|| Duration::from_secs(secs));
            }
            other => usage_and_exit(&format!("unknown flag `{other}`")),
        }
    }
    config
}

fn main() {
    let config = parse_config();
    let server = match scalagraph_serve::Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: could not start: {e}");
            exit(2)
        }
    };
    println!("scalagraph-serve listening on {}", server.local_addr());
    let counters = server.join();
    eprintln!("[scalagraph-serve] final ledger\n{counters}");
    exit(if counters.balanced() { 0 } else { 1 })
}
