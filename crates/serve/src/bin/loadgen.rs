//! `loadgen` — corpus-replaying load generator for `scalagraph-serve`.
//!
//! ```text
//! loadgen [options]
//!   --addr <host:port>     daemon address                      [127.0.0.1:7451]
//!   --corpus <dir>         scenario directory (*.json)         [corpus]
//!   --concurrency <n>      client threads                      [8]
//!   --passes <n>           full passes over the corpus         [2]
//!   --repeat <n>           duplicate submissions per scenario  [1]
//!   --out <path>           benchmark report                    [BENCH_serve.json]
//!   --expect-all-ok        exit 1 unless every request was ok:true
//!   --expect-memo-hits     exit 1 unless at least one memo hit was observed
//! ```
//!
//! Each request is an HTTP/1.1 `POST /run` on its own connection (the
//! daemon is `Connection: close`). Scenarios are expanded to
//! `passes * repeat` copies, shuffled deterministically, and drained from a
//! shared work list by `concurrency` threads. The report captures
//! throughput, latency percentiles, protocol-level success counts, and the
//! daemon's own cache counters scraped from `GET /metrics`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::exit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use scalagraph_conformance::json::{obj, Json};

fn usage_and_exit(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    eprintln!(
        "{}",
        include_str!("loadgen.rs")
            .lines()
            .skip(2)
            .take_while(|l| l.starts_with("//!"))
            .map(|l| l.trim_start_matches("//! ").trim_start_matches("//!"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    exit(2)
}

struct Args {
    addr: String,
    corpus: String,
    concurrency: usize,
    passes: usize,
    repeat: usize,
    out: String,
    expect_all_ok: bool,
    expect_memo_hits: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        addr: "127.0.0.1:7451".into(),
        corpus: "corpus".into(),
        concurrency: 8,
        passes: 2,
        repeat: 1,
        out: "BENCH_serve.json".into(),
        expect_all_ok: false,
        expect_memo_hits: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage_and_exit(&format!("{a} needs a value")))
        };
        let parse_n = |flag: &str, v: String| -> usize {
            v.parse()
                .unwrap_or_else(|_| usage_and_exit(&format!("{flag} needs a positive integer")))
        };
        match a.as_str() {
            "--addr" => parsed.addr = value(),
            "--corpus" => parsed.corpus = value(),
            "--concurrency" => parsed.concurrency = parse_n("--concurrency", value()).max(1),
            "--passes" => parsed.passes = parse_n("--passes", value()).max(1),
            "--repeat" => parsed.repeat = parse_n("--repeat", value()).max(1),
            "--out" => parsed.out = value(),
            "--expect-all-ok" => parsed.expect_all_ok = true,
            "--expect-memo-hits" => parsed.expect_memo_hits = true,
            other => usage_and_exit(&format!("unknown flag `{other}`")),
        }
    }
    parsed
}

/// Load every `*.json` scenario body from the corpus directory, sorted by
/// file name so runs are reproducible.
fn load_corpus(dir: &str) -> Vec<(String, String)> {
    let mut files: Vec<_> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => usage_and_exit(&format!("cannot read corpus dir `{dir}`: {e}")),
    };
    files.sort();
    files
        .into_iter()
        .filter_map(|path| {
            let name = path.file_stem()?.to_string_lossy().into_owned();
            let body = std::fs::read_to_string(&path).ok()?;
            Some((name, body))
        })
        .collect()
}

/// One `POST /run` on a fresh connection. Returns the response body.
fn post_run(addr: &str, body: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let head = format!(
        "POST /run HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((_, payload)) => Ok(payload.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "no header/body separator in response",
        )),
    }
}

fn get_metrics(addr: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let head = format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    Ok(raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default())
}

/// Pull one `scalagraph_serve_<name> <value>` line out of the metrics
/// text; 0 when the daemon was unreachable or the counter is missing.
fn scrape(metrics: &str, name: &str) -> u64 {
    let key = format!("scalagraph_serve_{name} ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&key))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    ok: u64,
    errors: u64,
    memo_hits: u64,
    io_failures: u64,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (p * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn main() {
    let args = parse_args();
    let corpus = load_corpus(&args.corpus);
    if corpus.is_empty() {
        usage_and_exit(&format!("no *.json scenarios under `{}`", args.corpus));
    }

    // Expand to passes * repeat copies and interleave deterministically so
    // concurrent threads hit a mix of scenarios (and, on pass >= 2 or
    // repeat >= 2, the daemon's memo cache).
    let mut work: Vec<usize> = Vec::new();
    for pass in 0..args.passes {
        for _ in 0..args.repeat {
            for i in 0..corpus.len() {
                work.push((i + pass * 7) % corpus.len());
            }
        }
    }
    let total = work.len();
    eprintln!(
        "loadgen: {} scenarios x {} passes x {} repeat = {} requests, {} threads -> {}",
        corpus.len(),
        args.passes,
        args.repeat,
        total,
        args.concurrency,
        args.addr
    );

    let corpus = Arc::new(corpus);
    let work = Arc::new(work);
    let next = Arc::new(AtomicUsize::new(0));
    let tally = Arc::new(Mutex::new(Tally::default()));
    let started = Instant::now();

    let threads: Vec<_> = (0..args.concurrency)
        .map(|_| {
            let corpus = Arc::clone(&corpus);
            let work = Arc::clone(&work);
            let next = Arc::clone(&next);
            let tally = Arc::clone(&tally);
            let addr = args.addr.clone();
            std::thread::spawn(move || loop {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                if slot >= work.len() {
                    return;
                }
                let (_, body) = &corpus[work[slot]];
                let sent = Instant::now();
                let outcome = post_run(&addr, body);
                let elapsed_us = sent.elapsed().as_micros() as u64;
                let mut t = match tally.lock() {
                    Ok(t) => t,
                    Err(_) => return,
                };
                t.latencies_us.push(elapsed_us);
                match outcome {
                    Ok(response) => {
                        if response.starts_with("{\"ok\":true") {
                            t.ok += 1;
                            if response.contains("\"memo_hit\":true") {
                                t.memo_hits += 1;
                            }
                        } else {
                            t.errors += 1;
                        }
                    }
                    Err(e) => {
                        t.io_failures += 1;
                        t.errors += 1;
                        eprintln!("loadgen: request failed: {e}");
                    }
                }
            })
        })
        .collect();
    for t in threads {
        let _ = t.join();
    }
    let wall = started.elapsed();

    let metrics = get_metrics(&args.addr).unwrap_or_default();
    let mut tally = match Arc::try_unwrap(tally) {
        Ok(m) => match m.into_inner() {
            Ok(t) => t,
            Err(_) => usage_and_exit("tally poisoned"),
        },
        Err(_) => usage_and_exit("worker thread leaked"),
    };
    tally.latencies_us.sort_unstable();

    let wall_s = wall.as_secs_f64().max(1e-9);
    let throughput = total as f64 / wall_s;
    let report = obj(vec![
        ("bench", Json::Str("serve".into())),
        ("addr", Json::Str(args.addr.clone())),
        ("scenarios", Json::Int(corpus.len() as u64)),
        ("passes", Json::Int(args.passes as u64)),
        ("repeat", Json::Int(args.repeat as u64)),
        ("concurrency", Json::Int(args.concurrency as u64)),
        ("requests", Json::Int(total as u64)),
        ("wall_ms", Json::Int(wall.as_millis() as u64)),
        (
            "throughput_rps",
            Json::Float((throughput * 100.0).round() / 100.0),
        ),
        ("ok", Json::Int(tally.ok)),
        ("errors", Json::Int(tally.errors)),
        ("io_failures", Json::Int(tally.io_failures)),
        ("client_memo_hits", Json::Int(tally.memo_hits)),
        (
            "latency_us",
            obj(vec![
                ("p50", Json::Int(percentile(&tally.latencies_us, 0.50))),
                ("p90", Json::Int(percentile(&tally.latencies_us, 0.90))),
                ("p99", Json::Int(percentile(&tally.latencies_us, 0.99))),
                (
                    "max",
                    Json::Int(tally.latencies_us.last().copied().unwrap_or(0)),
                ),
            ]),
        ),
        (
            "server",
            obj(vec![
                (
                    "graph_cache_hits",
                    Json::Int(scrape(&metrics, "graph_cache_hits")),
                ),
                (
                    "graph_cache_misses",
                    Json::Int(scrape(&metrics, "graph_cache_misses")),
                ),
                (
                    "graph_cache_builds",
                    Json::Int(scrape(&metrics, "graph_cache_builds")),
                ),
                ("memo_hits", Json::Int(scrape(&metrics, "memo_hits"))),
                ("memo_misses", Json::Int(scrape(&metrics, "memo_misses"))),
                ("requests_ok", Json::Int(scrape(&metrics, "requests_ok"))),
                (
                    "requests_error",
                    Json::Int(scrape(&metrics, "requests_error")),
                ),
                (
                    "ledger_balanced",
                    Json::Int(scrape(&metrics, "ledger_balanced")),
                ),
            ]),
        ),
    ]);
    let rendered = report.pretty();
    if let Err(e) = std::fs::write(&args.out, format!("{rendered}\n")) {
        eprintln!("loadgen: cannot write {}: {e}", args.out);
        exit(2);
    }
    println!("{rendered}");
    eprintln!(
        "loadgen: {total} requests in {:.2}s ({throughput:.1} rps), {} ok / {} errors, {} memo hits",
        wall_s, tally.ok, tally.errors, tally.memo_hits
    );

    let mut failed = false;
    if args.expect_all_ok && tally.ok != total as u64 {
        eprintln!("loadgen: FAIL --expect-all-ok: {} of {total} ok", tally.ok);
        failed = true;
    }
    if args.expect_memo_hits && tally.memo_hits == 0 {
        eprintln!("loadgen: FAIL --expect-memo-hits: no memo hits observed");
        failed = true;
    }
    exit(if failed { 1 } else { 0 })
}
