//! The daemon: a TCP listener in front of the [`Executor`].
//!
//! One port speaks both transports. The first bytes of a connection are
//! sniffed: an HTTP method verb (`POST `, `GET `, ...) selects the
//! one-request HTTP/1.1 handler; anything else (in practice a `{`) selects
//! the line-delimited JSON session, where each line is one request and each
//! response is one line. Every connection gets a thread — connection counts
//! here are bounded by the admission queue behind them, not by the
//! listener.
//!
//! Shutdown is cooperative and total: a `shutdown` control request (either
//! transport) or [`Server::stop`] flips one flag; the accept loop closes,
//! the executor drains its queue into typed refusals and cancels in-flight
//! simulations through their [`CancelToken`](scalagraph::CancelToken)s,
//! connection threads flush their last responses, and [`Server::join`]
//! returns the final counters — whose ledger must balance, exactly as in
//! the batch runtime.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use scalagraph_conformance::json::{parse, Json};
use scalagraph_runtime::{GraphCache, GraphCacheStats};
use scalagraph_telemetry::{ServiceCounters, ServiceMetrics};

use crate::executor::{Executor, ExecutorConfig, RunReply};
use crate::http;
use crate::memo::{MemoCache, MemoStats};
use crate::protocol::{
    control_response, ok_response, parse_jsonl_request, parse_scenario_strict, Control, ErrorReply,
    Request,
};

/// Daemon knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Default per-job wall-clock deadline in milliseconds (applied when a
    /// request carries none); 0 disables the default.
    pub default_deadline_ms: u64,
    /// Request body / line ceiling in bytes.
    pub max_body_bytes: usize,
    /// Graph cache capacity (distinct graph specs).
    pub graph_cache_capacity: usize,
    /// Graph cache resident-byte budget; 0 disables the byte bound (the
    /// entry-count capacity still applies).
    pub graph_cache_bytes: u64,
    /// Memo capacity (distinct scenario fingerprints).
    pub memo_capacity: usize,
    /// Emit a metrics summary to stderr on this cadence.
    pub summary_every: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 256,
            default_deadline_ms: 10_000,
            max_body_bytes: 1 << 20,
            graph_cache_capacity: 64,
            graph_cache_bytes: 0,
            memo_capacity: 1024,
            summary_every: None,
        }
    }
}

/// The metrics text rendering served by `GET /metrics` and the `metrics`
/// control verb: one `name value` pair per line, stable names.
pub fn render_metrics_text(
    counters: &ServiceCounters,
    graphs: &GraphCacheStats,
    memo: &MemoStats,
) -> String {
    let pairs: [(&str, u64); 27] = [
        ("connections", counters.connections),
        ("requests_ok", counters.requests_ok),
        ("requests_error", counters.requests_error),
        ("jobs_submitted", counters.submitted),
        ("jobs_completed", counters.completed),
        ("jobs_failed", counters.failed),
        ("jobs_cancelled", counters.cancelled),
        ("jobs_rejected", counters.rejected),
        ("deadline_kills", counters.deadline_kills),
        ("panics_contained", counters.panics_contained),
        ("queue_depth", counters.queue_depth),
        ("queue_peak", counters.queue_peak),
        ("graph_cache_hits", counters.graph_cache_hits),
        ("graph_cache_misses", counters.graph_cache_misses),
        ("graph_cache_builds", graphs.builds),
        ("graph_cache_evictions", graphs.evictions),
        ("graph_cache_resident_bytes", graphs.resident_bytes),
        ("graph_cache_byte_budget", graphs.byte_budget),
        ("memo_hits", counters.memo_hits),
        ("memo_misses", counters.memo_misses),
        ("memo_inserted", memo.inserted),
        ("memo_evictions", memo.evictions),
        ("memo_abandoned", memo.abandoned),
        ("bytes_in", counters.bytes_in),
        ("bytes_out", counters.bytes_out),
        ("ledger_balanced", u64::from(counters.balanced())),
        ("workers_busy", 0), // reserved; kept for line-format stability
    ];
    let mut out = String::new();
    for (name, value) in pairs {
        out.push_str("scalagraph_serve_");
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

struct Shared {
    metrics: Arc<ServiceMetrics>,
    graphs: Arc<GraphCache>,
    memo: Arc<MemoCache>,
    executor: Executor,
    stop: AtomicBool,
    max_body_bytes: usize,
}

impl Shared {
    fn metrics_text(&self) -> String {
        render_metrics_text(
            &self.metrics.snapshot(),
            &self.graphs.stats(),
            &self.memo.stats(),
        )
    }

    /// Handles one parsed request and returns the single-line response
    /// body. Blocking: a `run` request waits for its terminal reply.
    fn answer(&self, request: Request) -> String {
        match request {
            Request::Control(Control::Ping) => control_response("pong", None),
            Request::Control(Control::Metrics) => {
                control_response("metrics", Some(("text", Json::Str(self.metrics_text()))))
            }
            Request::Control(Control::Shutdown) => {
                self.stop.store(true, Ordering::Release);
                control_response("shutdown", None)
            }
            Request::Run {
                scenario,
                priority,
                deadline_ms,
            } => {
                let (tx, rx) = channel();
                if let Err(refusal) = self.executor.submit(*scenario, priority, deadline_ms, tx) {
                    return refusal.to_response();
                }
                match rx.recv() {
                    Ok(RunReply::Done {
                        result,
                        memo_hit,
                        wall_ms,
                    }) => ok_response(&result, memo_hit, wall_ms),
                    Ok(RunReply::Refused(refusal)) => refusal.to_response(),
                    // The worker died without replying — contained panics
                    // still reply, so this is a runtime bug, answered as a
                    // typed error rather than a dropped connection.
                    Err(_) => ErrorReply::internal("job reply channel lost").to_response(),
                }
            }
        }
    }

    fn count_response(&self, body: &str) {
        if body.starts_with("{\"ok\":true") {
            self.metrics.request_ok();
        } else {
            self.metrics.request_error();
        }
    }
}

enum LineRead {
    Line(Vec<u8>),
    Eof,
    Oversized,
    Stopped,
}

/// Reads one `\n`-terminated line from a stream with a read timeout,
/// polling the stop flag between timeouts and refusing lines over `cap`
/// bytes. `pending` carries bytes already read (sniffing, previous line
/// overshoot) across calls.
fn read_line(
    stream: &mut TcpStream,
    pending: &mut Vec<u8>,
    cap: usize,
    stop: &AtomicBool,
) -> LineRead {
    loop {
        if let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = pending.drain(..=pos).collect();
            line.pop(); // the newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return LineRead::Line(line);
        }
        if pending.len() > cap {
            return LineRead::Oversized;
        }
        if stop.load(Ordering::Acquire) {
            return LineRead::Stopped;
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if pending.iter().any(|b| !b.is_ascii_whitespace()) {
                    // A final unterminated line still counts as a request.
                    LineRead::Line(std::mem::take(pending))
                } else {
                    LineRead::Eof
                };
            }
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // re-check stop, then block again
            }
            Err(_) => return LineRead::Eof,
        }
    }
}

/// One jsonl session: every line in, one response line out.
fn serve_jsonl(shared: &Shared, mut stream: TcpStream, mut pending: Vec<u8>) {
    use std::io::Write as _;
    let write_line = |stream: &mut TcpStream, body: &str| -> bool {
        shared.count_response(body);
        let framed = format!("{body}\n");
        shared.metrics.add_bytes_out(framed.len() as u64);
        stream.write_all(framed.as_bytes()).is_ok() && stream.flush().is_ok()
    };
    loop {
        match read_line(
            &mut stream,
            &mut pending,
            shared.max_body_bytes,
            &shared.stop,
        ) {
            LineRead::Eof | LineRead::Stopped => return,
            LineRead::Oversized => {
                // Framing is lost past an oversized line: answer, then close.
                let body = ErrorReply::oversized(shared.max_body_bytes).to_response();
                let _ = write_line(&mut stream, &body);
                return;
            }
            LineRead::Line(raw) => {
                if raw.iter().all(|b| b.is_ascii_whitespace()) {
                    continue;
                }
                shared.metrics.add_bytes_in(raw.len() as u64);
                let text = String::from_utf8_lossy(&raw).into_owned();
                let response = match parse_jsonl_request(&text) {
                    Ok(request) => {
                        let is_shutdown = matches!(request, Request::Control(Control::Shutdown));
                        let body = shared.answer(request);
                        let ok = write_line(&mut stream, &body);
                        if is_shutdown || !ok {
                            return;
                        }
                        continue;
                    }
                    Err(refusal) => refusal.to_response(),
                };
                if !write_line(&mut stream, &response) {
                    return;
                }
            }
        }
    }
}

/// One HTTP exchange: route, answer, close.
fn serve_http(shared: &Shared, mut stream: TcpStream, pending: Vec<u8>) {
    let request = match http::read_request(&pending, &mut stream, shared.max_body_bytes) {
        Ok(request) => request,
        Err(http::HttpError::Oversized { unread }) => {
            let refusal = ErrorReply::oversized(shared.max_body_bytes);
            respond_http(shared, &mut stream, &refusal.to_response(), Some(&refusal));
            http::drain(&mut stream, unread);
            return;
        }
        Err(http::HttpError::Malformed(message)) => {
            let refusal = ErrorReply::bad_request(message);
            respond_http(shared, &mut stream, &refusal.to_response(), Some(&refusal));
            return;
        }
        Err(http::HttpError::Io(_)) => return,
    };
    shared.metrics.add_bytes_in(request.body.len() as u64);
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/run") => {
            let body = match parse(&request.body)
                .map_err(ErrorReply::malformed_json)
                .and_then(|v| parse_scenario_strict(&v))
            {
                Ok(scenario) => shared.answer(Request::Run {
                    scenario: Box::new(scenario),
                    priority: scalagraph_runtime::Priority::Normal,
                    deadline_ms: None,
                }),
                Err(refusal) => refusal.to_response(),
            };
            respond_http(shared, &mut stream, &body, None);
        }
        ("GET", "/metrics") => {
            let text = shared.metrics_text();
            shared.count_response("{\"ok\":true");
            let written =
                http::write_response(&mut stream, 200, "OK", "text/plain; charset=utf-8", &text);
            if let Ok(n) = written {
                shared.metrics.add_bytes_out(n);
            }
        }
        ("POST", "/shutdown") => {
            let body = shared.answer(Request::Control(Control::Shutdown));
            respond_http(shared, &mut stream, &body, None);
        }
        (method, path @ ("/run" | "/metrics" | "/shutdown")) => {
            let refusal = ErrorReply::method_not_allowed(method, path);
            respond_http(shared, &mut stream, &refusal.to_response(), Some(&refusal));
        }
        (_, path) => {
            let refusal = ErrorReply::not_found(path);
            respond_http(shared, &mut stream, &refusal.to_response(), Some(&refusal));
        }
    }
}

/// Writes a JSON body with the right status line and counts it.
fn respond_http(shared: &Shared, stream: &mut TcpStream, body: &str, refusal: Option<&ErrorReply>) {
    shared.count_response(body);
    let (status, reason) = match refusal {
        Some(refusal) => refusal.http_status(),
        None => {
            if body.starts_with("{\"ok\":true") {
                (200, "OK")
            } else {
                // A run that was refused downstream (queue full, shutdown)
                // carries its own kind; recover the status from the body.
                status_from_body(body)
            }
        }
    };
    if let Ok(n) = http::write_response(stream, status, reason, "application/json", body) {
        shared.metrics.add_bytes_out(n);
    }
}

fn status_from_body(body: &str) -> (u16, &'static str) {
    match parse(body)
        .ok()
        .and_then(|v| {
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(|k| k.as_str().map(str::to_string))
        })
        .as_deref()
    {
        Some("queue_full") => (429, "Too Many Requests"),
        Some("shutting_down") => (503, "Service Unavailable"),
        Some("internal") | None => (500, "Internal Server Error"),
        Some(_) => (400, "Bad Request"),
    }
}

/// Sniffs the transport and dispatches the connection.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    // Read until the first bytes disambiguate the transport.
    let mut pending: Vec<u8> = Vec::new();
    loop {
        if pending.len() >= 8 || pending.contains(&b'\n') {
            break;
        }
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
    let is_http = [
        &b"GET "[..],
        b"POST ",
        b"PUT ",
        b"HEAD ",
        b"DELETE ",
        b"PATCH ",
    ]
    .iter()
    .any(|verb| pending.starts_with(verb));
    if is_http {
        serve_http(shared, stream, pending);
    } else if !pending.is_empty() {
        serve_jsonl(shared, stream, pending);
    }
}

/// A running daemon. Start with [`Server::start`], end with a `shutdown`
/// request or [`Server::stop`], then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    summary: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds the listener and spawns the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// The bind error, verbatim.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let metrics = Arc::new(ServiceMetrics::new());
        let graphs = Arc::new(GraphCache::with_byte_budget(
            config.graph_cache_capacity,
            if config.graph_cache_bytes == 0 {
                u64::MAX
            } else {
                config.graph_cache_bytes
            },
        ));
        let memo = Arc::new(MemoCache::new(config.memo_capacity));
        let executor = Executor::start(
            ExecutorConfig {
                workers: config.workers,
                queue_capacity: config.queue_capacity,
                default_deadline: (config.default_deadline_ms > 0)
                    .then(|| Duration::from_millis(config.default_deadline_ms)),
                poll_interval: Duration::from_millis(2),
            },
            Arc::clone(&metrics),
            Arc::clone(&graphs),
            Arc::clone(&memo),
        );
        let shared = Arc::new(Shared {
            metrics,
            graphs,
            memo,
            executor,
            stop: AtomicBool::new(false),
            max_body_bytes: config.max_body_bytes,
        });

        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::spawn(move || loop {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        shared.metrics.conn_opened();
                        let shared = Arc::clone(&shared);
                        let handle = std::thread::spawn(move || serve_connection(&shared, stream));
                        if let Ok(mut conns) = connections.lock() {
                            conns.push(handle);
                            // Opportunistically reap finished handlers so a
                            // long-lived daemon doesn't accumulate them.
                            let mut alive = Vec::new();
                            for h in conns.drain(..) {
                                if h.is_finished() {
                                    let _ = h.join();
                                } else {
                                    alive.push(h);
                                }
                            }
                            *conns = alive;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            })
        };

        // Periodic stderr summary, built from short sleeps so shutdown
        // stays prompt.
        let summary = config.summary_every.map(|every| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let step = Duration::from_millis(100);
                let mut elapsed = Duration::ZERO;
                while !shared.stop.load(Ordering::Acquire) {
                    std::thread::sleep(step);
                    elapsed += step;
                    if elapsed >= every {
                        elapsed = Duration::ZERO;
                        eprintln!("[scalagraph-serve] {}", shared.metrics.snapshot());
                    }
                }
            })
        });

        Ok(Server {
            shared,
            local_addr,
            accept: Some(accept),
            summary,
            connections,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared metrics handle.
    pub fn metrics(&self) -> Arc<ServiceMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Whether a shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Requests a graceful shutdown (same effect as a `shutdown` control
    /// request over either transport).
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
    }

    /// Blocks until a shutdown is requested, then drains everything in
    /// dependency order and returns the final counters: accept loop first
    /// (no new connections), then the executor (queued jobs refused,
    /// in-flight jobs cancelled — which unblocks connection handlers
    /// waiting on replies), then the connection threads.
    pub fn join(mut self) -> ServiceCounters {
        while !self.shared.stop.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(20));
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Executor teardown releases every connection handler blocked on a
        // job reply, so it must run before joining connection threads.
        self.shared.executor.shutdown();
        let handles: Vec<JoinHandle<()>> = match self.connections.lock() {
            Ok(mut conns) => conns.drain(..).collect(),
            Err(poisoned) => poisoned.into_inner().drain(..).collect(),
        };
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(summary) = self.summary.take() {
            let _ = summary.join();
        }
        self.shared.metrics.snapshot()
    }
}
