//! GraphDynS-like centralized-crossbar accelerator simulator.
//!
//! GraphDynS (MICRO'19) follows the template of Figure 3: scheduler
//! elements feed PEs, each PE processes one edge per cycle, and the
//! resulting update is shuffled through an N×N crossbar to the on-chip
//! memory partition (MP) holding the destination vertex, which performs the
//! `Reduce`. The crossbar serializes conflicting updates per output port
//! but otherwise delivers in a single cycle — behaviourally ideal, which is
//! exactly why its O(N²) hardware cost limits scaling (Section II-B).
//!
//! The paper's **GraphDynS-512** extension — "four mesh-connected tiles
//! with each consisting of 128 crossbar-connected PEs" — is reproduced by
//! `tiles > 1`: vertices hash across all tiles, edges are stored with their
//! source's tile, and cross-tile updates traverse a bandwidth-limited
//! inter-tile link instead of the local crossbar.
//!
//! Setting `with_crossbar: false` gives the "accelerator minus crossbar"
//! ablation of Figure 4: updates are delivered to MPs without conflict
//! serialization (results stay correct here, unlike the paper's RTL hack,
//! because we still perform every `Reduce`).

use scalagraph::aggregate::AggregationBuffer;
use scalagraph::stats::{SimResult, SimStats};
use scalagraph_algo::{Algorithm, EdgeCtx};
use scalagraph_graph::{Csr, VertexId, EDGES_PER_LINE, LINE_BYTES};
use scalagraph_hwmodel::{max_frequency_mhz, InterconnectKind};
use std::collections::VecDeque;

/// Configuration of the GraphDynS-like baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphDynsConfig {
    /// Total processing elements.
    pub pes: usize,
    /// PEs per crossbar tile (`pes` for a single-tile design; 128 for the
    /// paper's GraphDynS-512).
    pub pes_per_tile: usize,
    /// Whether the crossbar's conflict serialization is modelled
    /// (`false` = the Figure 4 "w/o crossbar" ablation).
    pub with_crossbar: bool,
    /// Updates per cycle each inter-tile link can carry (multi-tile only).
    pub intertile_updates_per_cycle: usize,
    /// Operating clock in MHz; `None` derives the crossbar's synthesizable
    /// maximum from the hardware model (300 MHz for the no-crossbar
    /// ablation).
    pub clock_mhz: Option<f64>,
    /// Off-chip bandwidth in bytes per cycle for the whole accelerator.
    pub mem_bytes_per_cycle: f64,
    /// PE input queue depth.
    pub pe_queue_capacity: usize,
    /// AccuGraph flavor: its parallel accumulator sustains a lower MP
    /// reduce rate under conflicts, modelled as an extra serialization
    /// factor in per-MP delivery (1.0 = GraphDynS).
    pub mp_serialization: f64,
}

impl GraphDynsConfig {
    /// The paper's GraphDynS-128 operating point: one 128-PE crossbar tile
    /// at 100 MHz (Section V-A).
    pub fn graphdyns_128() -> Self {
        GraphDynsConfig {
            pes: 128,
            pes_per_tile: 128,
            with_crossbar: true,
            intertile_updates_per_cycle: 48,
            clock_mhz: Some(100.0),
            mem_bytes_per_cycle: 460.0e9 / 100.0e6,
            pe_queue_capacity: 4,
            mp_serialization: 1.0,
        }
    }

    /// The paper's GraphDynS-512 extension: four 128-PE crossbar tiles
    /// joined by a mesh, still at 100 MHz.
    pub fn graphdyns_512() -> Self {
        GraphDynsConfig {
            pes: 512,
            pes_per_tile: 128,
            ..Self::graphdyns_128()
        }
    }

    /// A single-tile design with `pes` PEs at the crossbar's modelled
    /// maximum frequency (used by the Figure 4 sweep).
    ///
    /// # Panics
    ///
    /// Panics if `pes == 0`.
    pub fn with_pes(pes: usize) -> Self {
        assert!(pes > 0);
        GraphDynsConfig {
            pes,
            pes_per_tile: pes,
            with_crossbar: true,
            intertile_updates_per_cycle: 48,
            clock_mhz: None,
            mem_bytes_per_cycle: 0.0, // resolved in effective_* below
            pe_queue_capacity: 4,
            mp_serialization: 1.0,
        }
    }

    /// AccuGraph flavor of the same template (used by Figure 4): slightly
    /// lower conflict tolerance at the memory partitions.
    pub fn accugraph_with_pes(pes: usize) -> Self {
        GraphDynsConfig {
            mp_serialization: 1.15,
            ..Self::with_pes(pes)
        }
    }

    /// Number of crossbar tiles.
    pub fn tiles(&self) -> usize {
        self.pes.div_ceil(self.pes_per_tile)
    }

    /// Effective clock in MHz.
    pub fn effective_clock_mhz(&self) -> f64 {
        if let Some(mhz) = self.clock_mhz {
            return mhz;
        }
        let kind = if self.with_crossbar {
            InterconnectKind::Crossbar
        } else {
            InterconnectKind::None
        };
        max_frequency_mhz(kind, self.pes_per_tile)
            .frequency_mhz()
            .unwrap_or(100.0)
    }

    /// Effective off-chip bandwidth in bytes per cycle: the U280's
    /// 460 GB/s at the effective clock unless overridden.
    pub fn effective_mem_bytes_per_cycle(&self) -> f64 {
        if self.mem_bytes_per_cycle > 0.0 {
            self.mem_bytes_per_cycle
        } else {
            460.0e9 / (self.effective_clock_mhz() * 1e6)
        }
    }
}

/// A pending edge workload inside a PE queue.
#[derive(Debug, Clone, Copy)]
struct EdgeWork<P> {
    src: VertexId,
    dst: VertexId,
    weight: u32,
    src_degree: u32,
    src_prop: P,
}

#[derive(Debug, Clone, Copy)]
struct Update<P> {
    dst: VertexId,
    value: P,
}

/// A fetched run of contiguous edges of one active vertex.
#[derive(Debug, Clone)]
struct Segment<P> {
    src: VertexId,
    prop: P,
    src_degree: u32,
    edges: std::ops::Range<usize>,
}

/// The GraphDynS-like simulator.
///
/// # Example
///
/// ```
/// use scalagraph_baselines::{GraphDyns, GraphDynsConfig};
/// use scalagraph_algo::algorithms::Bfs;
/// use scalagraph_graph::{generators, Csr};
///
/// let g = Csr::from_edges(64, &generators::binary_tree(64));
/// let run = GraphDyns::new(GraphDynsConfig::with_pes(32)).run(&Bfs::from_root(0), &g);
/// assert_eq!(run.properties[1], 1);
/// ```
#[derive(Debug, Clone)]
pub struct GraphDyns {
    config: GraphDynsConfig,
}

impl GraphDyns {
    /// Creates the baseline with `config`.
    pub fn new(config: GraphDynsConfig) -> Self {
        GraphDyns { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GraphDynsConfig {
        &self.config
    }

    /// Runs `algo` on `graph` to completion.
    pub fn run<A: Algorithm>(&self, algo: &A, graph: &Csr) -> SimResult<A::Prop> {
        Machine::new(&self.config, algo, graph).run()
    }
}

struct Tile<P> {
    /// Edges of sources homed in this tile (full vertex id space).
    csr: Csr,
    /// Active vertices awaiting fetch.
    pending: VecDeque<(VertexId, P)>,
    /// Fetched segments awaiting dispatch.
    segments: VecDeque<Segment<P>>,
    /// Fetch byte credit.
    credit: f64,
    /// Per-PE (local index) input queues.
    pe_queues: Vec<VecDeque<EdgeWork<P>>>,
    /// Per-MP (local index) crossbar ingress: one non-coalesced transfer
    /// per output port per cycle, but same-vertex updates ride along — the
    /// "vectorized data access" of GraphDynS.
    mp_ingress: Vec<AggregationBuffer<P>>,
    /// Per-MP non-coalesced transfer budget for the current cycle.
    mp_budget: Vec<u8>,
    /// Updates leaving this tile for remote MPs.
    egress: VecDeque<Update<P>>,
    /// Updates arriving from remote tiles.
    ingress: VecDeque<Update<P>>,
    pe_rr: usize,
}

struct Machine<'a, A: Algorithm> {
    cfg: &'a GraphDynsConfig,
    algo: &'a A,
    graph: &'a Csr,
    tiles: Vec<Tile<A::Prop>>,
    props: Vec<A::Prop>,
    temp: Vec<A::Prop>,
    touched: Vec<bool>,
    touched_list: Vec<VertexId>,
    stats: SimStats,
    now: u64,
    bytes_per_cycle_per_tile: f64,
    frontier_sizes: Vec<usize>,
}

impl<'a, A: Algorithm> Machine<'a, A> {
    fn new(cfg: &'a GraphDynsConfig, algo: &'a A, graph: &'a Csr) -> Self {
        let n = graph.num_vertices();
        let tiles_n = cfg.tiles();
        // Partition edges by source tile.
        let mut per_tile: Vec<Vec<scalagraph_graph::Edge>> = vec![Vec::new(); tiles_n];
        for e in graph.edges() {
            per_tile[tile_of(cfg, e.src)].push(e);
        }
        let tiles = per_tile
            .into_iter()
            .map(|edges| {
                let local = cfg.pes_per_tile.min(cfg.pes);
                Tile {
                    csr: Csr::from_edges(n, &edges),
                    pending: VecDeque::new(),
                    segments: VecDeque::new(),
                    credit: 0.0,
                    pe_queues: (0..local).map(|_| VecDeque::new()).collect(),
                    mp_ingress: (0..local).map(|_| AggregationBuffer::new(8)).collect(),
                    mp_budget: vec![0; local],
                    egress: VecDeque::new(),
                    ingress: VecDeque::new(),
                    pe_rr: 0,
                }
            })
            .collect();
        Machine {
            cfg,
            algo,
            graph,
            tiles,
            props: (0..n as u32).map(|v| algo.init(v, graph)).collect(),
            temp: vec![algo.reduce_identity(); n],
            touched: vec![false; n],
            touched_list: Vec::new(),
            stats: SimStats {
                slices: 1,
                ..SimStats::default()
            },
            now: 0,
            bytes_per_cycle_per_tile: cfg.effective_mem_bytes_per_cycle() / tiles_n as f64,
            frontier_sizes: Vec::new(),
        }
    }

    fn run(mut self) -> SimResult<A::Prop> {
        let mut active: Vec<VertexId> = self.algo.initial_frontier(self.graph);
        scalagraph_algo::reference::dedup_frontier(&mut active, self.graph.num_vertices());
        let mut active: Vec<(VertexId, A::Prop)> = active
            .into_iter()
            .map(|v| (v, self.props[v as usize]))
            .collect();
        let limit = self.algo.max_iterations().map_or(u64::MAX, |m| m as u64);
        let mut iter = 0u64;

        while !active.is_empty() && iter < limit {
            self.frontier_sizes.push(active.len());
            // Scatter.
            for &(v, prop) in &active {
                let t = tile_of(self.cfg, v);
                if self.tiles[t].csr.out_degree(v) > 0 {
                    self.tiles[t].pending.push_back((v, prop));
                }
                // Active-list + record fetch accounting (8 B per vertex).
                self.stats.offchip_bytes_read += 8;
            }
            while !self.scatter_drained() {
                self.scatter_cycle();
            }
            // Apply.
            let dense = !self.algo.is_monotonic();
            let todo: Vec<VertexId> = if dense {
                self.touched_list.clear();
                self.graph.vertices().collect()
            } else {
                std::mem::take(&mut self.touched_list)
            };
            let mut next = Vec::new();
            // One vertex per MP per cycle: cycles = max bucket depth.
            let mut per_mp = vec![0u64; self.cfg.pes];
            for &v in &todo {
                per_mp[mp_of(self.cfg, v)] += 1;
            }
            let apply_cycles = per_mp.iter().copied().max().unwrap_or(0);
            self.now += apply_cycles;
            self.stats.apply_cycles += apply_cycles;
            for v in todo {
                let vi = v as usize;
                let old = self.props[vi];
                let new = self.algo.apply(v, old, self.temp[vi], self.graph);
                self.temp[vi] = self.algo.reduce_identity();
                self.touched[vi] = false;
                if new != old {
                    self.props[vi] = new;
                }
                if self.algo.activates(old, new) {
                    self.stats.activations += 1;
                    self.stats.offchip_bytes_written += 8;
                    next.push((v, new));
                }
            }
            active = next;
            iter += 1;
            self.stats.iterations += 1;
        }

        for tile in &self.tiles {
            for b in &tile.mp_ingress {
                self.stats.agg_merges += b.merges();
            }
        }
        self.stats.cycles = self.now;
        self.stats.pe_cycle_budget = self.now * self.cfg.pes as u64;
        SimResult {
            properties: self.props,
            stats: self.stats,
            frontier_sizes: self.frontier_sizes,
        }
    }

    fn scatter_drained(&self) -> bool {
        self.tiles.iter().all(|t| {
            t.pending.is_empty()
                && t.segments.is_empty()
                && t.pe_queues.iter().all(VecDeque::is_empty)
                && t.mp_ingress.iter().all(AggregationBuffer::is_empty)
                && t.egress.is_empty()
                && t.ingress.is_empty()
        })
    }

    fn scatter_cycle(&mut self) {
        self.now += 1;
        self.stats.scatter_cycles += 1;
        let tiles_n = self.tiles.len();
        let algo = self.algo;

        for t in 0..tiles_n {
            // Fetch: spend byte credit on edge lines of pending actives.
            self.tiles[t].credit += self.bytes_per_cycle_per_tile;
            while self.tiles[t].credit >= LINE_BYTES as f64 {
                let Some(&(v, prop)) = self.tiles[t].pending.front() else {
                    break;
                };
                let range = self.tiles[t].csr.edge_range(v);
                let lines = range.len().div_ceil(EDGES_PER_LINE).max(1) as f64;
                let need = lines * LINE_BYTES as f64;
                if self.tiles[t].credit < need {
                    break;
                }
                self.tiles[t].credit -= need;
                self.stats.offchip_bytes_read += need as u64;
                self.stats.offchip_reads += lines as u64;
                let degree = self.graph.out_degree(v) as u32;
                self.tiles[t].pending.pop_front();
                self.tiles[t].segments.push_back(Segment {
                    src: v,
                    prop,
                    src_degree: degree,
                    edges: range,
                });
            }

            // Dispatch: up to one edge per PE per cycle, load-balanced
            // round-robin (GraphDynS's scheduling contribution).
            let local = self.tiles[t].pe_queues.len();
            let mut budget = local;
            while budget > 0 {
                let head = match self.tiles[t].segments.front() {
                    None => break,
                    Some(seg) if seg.edges.is_empty() => {
                        self.tiles[t].segments.pop_front();
                        continue;
                    }
                    Some(seg) => (seg.src, seg.prop, seg.src_degree, seg.edges.start),
                };
                let (src, prop, src_degree, idx) = head;
                let pe = self.tiles[t].pe_rr;
                self.tiles[t].pe_rr = (pe + 1) % local;
                if self.tiles[t].pe_queues[pe].len() >= self.cfg.pe_queue_capacity {
                    budget -= 1;
                    continue;
                }
                let work = EdgeWork {
                    src,
                    dst: self.tiles[t].csr.neighbor_at(idx),
                    weight: self.tiles[t].csr.weight_at(idx),
                    src_degree,
                    src_prop: prop,
                };
                self.tiles[t].segments.front_mut().unwrap().edges.start += 1;
                self.tiles[t].pe_queues[pe].push_back(work);
                self.stats.traversed_edges += 1;
                budget -= 1;
            }

            // PEs: one Process per cycle, shuffle through the crossbar
            // into the destination MP's ingress (or the egress queue for
            // remote destinations). Each output port accepts one
            // non-coalesced transfer per cycle; additional same-vertex
            // updates merge into a buffered entry for free (GraphDynS's
            // vectorized vertex access).
            for b in self.tiles[t].mp_budget.iter_mut() {
                *b = 1;
            }
            for pe in 0..local {
                let Some(work) = self.tiles[t].pe_queues[pe].front().copied() else {
                    continue;
                };
                let ctx = EdgeCtx {
                    weight: work.weight,
                    src: work.src,
                    src_degree: work.src_degree,
                };
                let value = algo.process(&ctx, work.src_prop);
                let dst_tile = tile_of(self.cfg, work.dst);
                let accepted = if !self.cfg.with_crossbar {
                    // Ablation: conflict-free delivery straight to temp.
                    self.deliver(work.dst, value);
                    true
                } else if dst_tile == t {
                    let mp_local = mp_of(self.cfg, work.dst) % local;
                    let budget = self.tiles[t].mp_budget[mp_local];
                    let ingress = &mut self.tiles[t].mp_ingress[mp_local];
                    let outcome = ingress.try_push(
                        work.dst,
                        value,
                        if budget > 0 { 16 } else { 0 },
                        |a, b| algo.reduce(a, b),
                    );
                    match outcome {
                        Some(o) => {
                            if o != scalagraph::aggregate::PushOutcome::Merged {
                                self.tiles[t].mp_budget[mp_local] = budget.saturating_sub(1);
                            }
                            true
                        }
                        None => false,
                    }
                } else {
                    self.tiles[t].egress.push_back(Update {
                        dst: work.dst,
                        value,
                    });
                    self.stats.updates_injected += 1;
                    true
                };
                if accepted {
                    self.tiles[t].pe_queues[pe].pop_front();
                    self.stats.gu_busy_cycles += 1;
                    self.stats.updates_produced += 1;
                } else {
                    self.stats.noc_conflicts += 1;
                }
            }

            // MPs: one Reduce per cycle (AccuGraph's accumulator stalls an
            // extra cycle on a deterministic fraction of cycles).
            if self.cfg.with_crossbar {
                let serial = self.cfg.mp_serialization;
                for mp_local in 0..local {
                    if serial > 1.0 {
                        let period = (serial / (serial - 1.0)).round() as u64;
                        if period > 0 && self.now.is_multiple_of(period) {
                            continue;
                        }
                    }
                    if let Some(u) = self.tiles[t].mp_ingress[mp_local].drain_one() {
                        self.deliver(u.dst, u.value);
                    }
                }
            }
        }

        // Inter-tile transport: each tile forwards up to the link width.
        for t in 0..tiles_n {
            for _ in 0..self.cfg.intertile_updates_per_cycle {
                let Some(u) = self.tiles[t].egress.pop_front() else {
                    break;
                };
                let dst_tile = tile_of(self.cfg, u.dst);
                // Mean hop distance on the 2x2 tile mesh is ~1.3; charge 2
                // link traversals (out + in) per remote update.
                self.stats.noc_hops += 2;
                self.tiles[dst_tile].ingress.push_back(u);
            }
            // Remote arrivals compete with the crossbar for MP ports: a
            // bounded number are folded per cycle.
            for _ in 0..self.cfg.intertile_updates_per_cycle {
                let Some(u) = self.tiles[t].ingress.pop_front() else {
                    break;
                };
                self.deliver(u.dst, u.value);
            }
        }
    }

    fn deliver(&mut self, dst: VertexId, value: A::Prop) {
        let vi = dst as usize;
        self.temp[vi] = self.algo.reduce(self.temp[vi], value);
        if !self.touched[vi] {
            self.touched[vi] = true;
            self.touched_list.push(dst);
        }
        self.stats.updates_delivered += 1;
    }
}

/// Memory partition (global) of a vertex: simple hash over all PEs.
fn mp_of(cfg: &GraphDynsConfig, v: VertexId) -> usize {
    v as usize % cfg.pes
}

/// Tile holding a vertex's property/partition.
fn tile_of(cfg: &GraphDynsConfig, v: VertexId) -> usize {
    mp_of(cfg, v) / cfg.pes_per_tile
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalagraph_algo::algorithms::{Bfs, PageRank, Sssp};
    use scalagraph_algo::ReferenceEngine;
    use scalagraph_graph::{generators, EdgeList};

    #[test]
    fn bfs_matches_reference() {
        let g = Csr::from_edges(300, &generators::uniform(300, 3000, 1));
        let algo = Bfs::from_root(0);
        let golden = ReferenceEngine::new().run(&algo, &g);
        let run = GraphDyns::new(GraphDynsConfig::with_pes(32)).run(&algo, &g);
        assert_eq!(run.properties, golden.properties);
        assert!(run.stats.cycles > 0);
    }

    #[test]
    fn sssp_matches_reference() {
        let mut list = EdgeList::new(150);
        for e in generators::uniform(150, 1200, 3) {
            list.push(e);
        }
        list.randomize_weights(255, 4);
        let g = Csr::from_edge_list(&list);
        let algo = Sssp::from_root(0);
        let golden = ReferenceEngine::new().run(&algo, &g);
        let run = GraphDyns::new(GraphDynsConfig::graphdyns_128()).run(&algo, &g);
        assert_eq!(run.properties, golden.properties);
    }

    #[test]
    fn pagerank_matches_reference_with_tolerance() {
        let g = Csr::from_edges(200, &generators::power_law(200, 2000, 0.8, 7));
        let algo = PageRank::new(4);
        let golden = ReferenceEngine::new().run(&algo, &g);
        let run = GraphDyns::new(GraphDynsConfig::with_pes(64)).run(&algo, &g);
        for (a, b) in run.properties.iter().zip(&golden.properties) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert_eq!(run.stats.traversed_edges, 4 * 2000);
    }

    #[test]
    fn multi_tile_matches_reference_and_counts_intertile_traffic() {
        let g = Csr::from_edges(400, &generators::uniform(400, 5000, 9));
        let algo = Bfs::from_root(1);
        let golden = ReferenceEngine::new().run(&algo, &g);
        let cfg = GraphDynsConfig {
            pes: 64,
            pes_per_tile: 16,
            ..GraphDynsConfig::with_pes(64)
        };
        let run = GraphDyns::new(cfg).run(&algo, &g);
        assert_eq!(run.properties, golden.properties);
        assert!(run.stats.noc_hops > 0, "cross-tile updates must be counted");
    }

    #[test]
    fn without_crossbar_is_faster_but_equal_results() {
        let g = Csr::from_edges(256, &generators::power_law(256, 4000, 0.9, 11));
        let algo = PageRank::new(2);
        let with = GraphDyns::new(GraphDynsConfig::with_pes(64)).run(&algo, &g);
        let without = GraphDyns::new(GraphDynsConfig {
            with_crossbar: false,
            ..GraphDynsConfig::with_pes(64)
        })
        .run(&algo, &g);
        for (a, b) in with.properties.iter().zip(&without.properties) {
            assert!((a - b).abs() < 1e-4);
        }
        assert!(without.stats.cycles <= with.stats.cycles);
    }

    #[test]
    fn accugraph_flavor_is_slower() {
        let g = Csr::from_edges(256, &generators::power_law(256, 6000, 0.9, 13));
        let algo = PageRank::new(2);
        let gd = GraphDyns::new(GraphDynsConfig::with_pes(64)).run(&algo, &g);
        let ag = GraphDyns::new(GraphDynsConfig::accugraph_with_pes(64)).run(&algo, &g);
        assert!(ag.stats.cycles >= gd.stats.cycles);
    }

    #[test]
    fn clock_defaults_follow_hwmodel() {
        assert_eq!(
            GraphDynsConfig::graphdyns_128().effective_clock_mhz(),
            100.0
        );
        let auto = GraphDynsConfig::with_pes(64);
        let mhz = auto.effective_clock_mhz();
        assert!((150.0..300.0).contains(&mhz), "crossbar-64 clock {mhz}");
        let no_xbar = GraphDynsConfig {
            with_crossbar: false,
            ..auto
        };
        assert_eq!(no_xbar.effective_clock_mhz(), 300.0);
    }

    #[test]
    fn utilization_and_stats_sane() {
        let g = Csr::from_edges(512, &generators::uniform(512, 8000, 15));
        let run = GraphDyns::new(GraphDynsConfig::with_pes(128)).run(&PageRank::new(2), &g);
        let s = run.stats;
        assert_eq!(s.updates_produced, s.traversed_edges);
        assert_eq!(s.updates_delivered + s.agg_merges, s.updates_produced);
        assert!(s.pe_utilization() > 0.0 && s.pe_utilization() <= 1.0);
        assert!(s.offchip_bytes_read > 0);
    }
}
