//! Baseline systems the ScalaGraph paper compares against.
//!
//! * [`graphdyns`] — a cycle-level simulator of a GraphDynS-like
//!   accelerator: PEs fully connected to memory partitions through a
//!   centralized crossbar with virtual output queues (the architecture
//!   template of Figure 3). A multi-tile variant reproduces the paper's
//!   GraphDynS-512 (four 128-PE crossbar tiles joined by a small mesh).
//!   An AccuGraph-like flavor is provided for the motivation study
//!   (Figure 4).
//! * [`gunrock`] — a throughput model of Gunrock on an NVIDIA V100:
//!   frontier-by-frontier execution with a cacheline-granularity memory
//!   traffic model, an atomic-stall penalty, and per-iteration kernel
//!   launch overhead — the three mechanisms the paper's GPU comparison
//!   rests on (Section V-B).
//!
//! Both baselines compute real algorithm results (validated against the
//! golden reference in the integration suite), so comparisons are
//! apples-to-apples on the same graphs.

pub mod graphdyns;
pub mod gunrock;

pub use graphdyns::{GraphDyns, GraphDynsConfig};
pub use gunrock::{GpuRun, GunrockModel};
