//! Gunrock-on-V100 throughput model.
//!
//! Gunrock (PPoPP'16) executes graph primitives frontier by frontier on the
//! GPU. The paper's comparison (Section V-B) attributes ScalaGraph's
//! advantage to three GPU-side costs, all of which this model reproduces:
//!
//! 1. **Random-access amplification** — a 4-byte vertex-property access
//!    that misses the L2 moves a full cacheline, so the paper's measured
//!    "52.2% memory access" gap comes from line-granularity traffic.
//! 2. **Atomic stalls** — "concurrent updates on the same vertex ... can
//!    often take more than 15% execution time of GPU-based graph systems".
//! 3. **Kernel launch overhead** — fixed per-iteration cost that dominates
//!    the many small iterations of BFS on high-diameter regions (why "BFS
//!    achieves the smallest speedups").
//!
//! Functional results come from the exact reference engine; only timing is
//! modelled, mirroring how the paper measures a real Gunrock run.

use scalagraph_algo::{Algorithm, ReferenceEngine};
use scalagraph_graph::{Csr, EDGES_PER_LINE, LINE_BYTES};

/// Result of a modelled GPU run.
#[derive(Debug, Clone)]
pub struct GpuRun<P> {
    /// Final vertex properties (exact, from the reference engine).
    pub properties: Vec<P>,
    /// Modelled wall-clock seconds.
    pub seconds: f64,
    /// Modelled off-chip traffic in bytes.
    pub bytes: u64,
    /// Edges traversed.
    pub traversed_edges: u64,
    /// Iterations executed.
    pub iterations: usize,
}

impl<P> GpuRun<P> {
    /// Throughput in GTEPS.
    pub fn gteps(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.traversed_edges as f64 / self.seconds / 1e9
        }
    }
}

/// Parameters of the modelled GPU (defaults: NVIDIA V100, the paper's
/// comparison hardware).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GunrockModel {
    /// HBM2 bandwidth in bytes per second (V100: 900 GB/s).
    pub mem_bandwidth: f64,
    /// L2 cache size in bytes (V100: 6 MB).
    pub l2_bytes: u64,
    /// Peak edge-processing rate in edges per second when compute-bound.
    pub edge_rate: f64,
    /// Fractional slowdown from atomic contention on vertex updates.
    pub atomic_stall: f64,
    /// Fixed per-iteration overhead in seconds (kernel launches, frontier
    /// compaction).
    pub iteration_overhead: f64,
    /// Overrides the vertex-property footprint used for the L2 hit-rate
    /// computation. When simulating a down-scaled stand-in of a large
    /// graph, pass the *paper-scale* vertex count here so the GPU's cache
    /// behaviour reflects the regime the paper measured (a 41M-vertex
    /// Twitter does not fit any L2, even if its 1/2048 stand-in would).
    pub footprint_vertices: Option<u64>,
    /// Paper-scale edge count of the graph being stood in for. When set,
    /// the per-iteration overhead is scaled by `sim_edges / paper_edges`
    /// so the *overhead per edge* matches the full-size run — otherwise a
    /// 1/512-scale graph would pay the kernel-launch cost 512 times over,
    /// relative to its work.
    pub footprint_edges: Option<u64>,
}

impl Default for GunrockModel {
    fn default() -> Self {
        Self::v100()
    }
}

impl GunrockModel {
    /// The NVIDIA V100 configuration used in Section V-A.
    pub fn v100() -> Self {
        GunrockModel {
            mem_bandwidth: 900.0e9,
            l2_bytes: 6 * 1024 * 1024,
            edge_rate: 60.0e9,
            atomic_stall: 0.18,
            iteration_overhead: 8.0e-6,
            footprint_vertices: None,
            footprint_edges: None,
        }
    }

    /// V100 model for a down-scaled stand-in of a paper-scale graph: L2
    /// hit rate follows the paper-scale vertex footprint, and kernel
    /// overhead is amortized as it would be on the full-size graph.
    pub fn v100_for_footprint(paper_vertices: u64) -> Self {
        GunrockModel {
            footprint_vertices: Some(paper_vertices),
            ..Self::v100()
        }
    }

    /// [`v100_for_footprint`](Self::v100_for_footprint) with the edge
    /// count too (full shape preservation for scaled stand-ins).
    pub fn v100_for_paper_graph(paper_vertices: u64, paper_edges: u64) -> Self {
        GunrockModel {
            footprint_vertices: Some(paper_vertices),
            footprint_edges: Some(paper_edges),
            ..Self::v100()
        }
    }

    /// Fraction of random vertex-property accesses that hit the L2 for a
    /// graph with `num_vertices` properties of 4 bytes: capacity-based,
    /// floored at the ~10% the paper cites for graph workloads and capped
    /// at 50% (random access thrashes well below ideal capacity reuse).
    pub fn l2_hit_rate(&self, num_vertices: usize) -> f64 {
        let n = self.footprint_vertices.unwrap_or(num_vertices as u64);
        let footprint = (n as f64) * 4.0;
        (self.l2_bytes as f64 / footprint).clamp(0.10, 0.50)
    }

    /// Runs `algo` on `graph`, returning exact results with modelled GPU
    /// timing.
    pub fn run<A: Algorithm>(&self, algo: &A, graph: &Csr) -> GpuRun<A::Prop> {
        let golden = ReferenceEngine::new().run(algo, graph);
        let hit = self.l2_hit_rate(graph.num_vertices());
        let overhead = match self.footprint_edges {
            Some(paper_e) if paper_e > 0 => {
                self.iteration_overhead * graph.num_edges() as f64 / paper_e as f64
            }
            _ => self.iteration_overhead,
        };
        let mut seconds = 0.0;
        let mut bytes = 0u64;
        for (i, &edges) in golden.edges_per_iteration.iter().enumerate() {
            let frontier = golden.frontier_sizes[i] as f64;
            let e = edges as f64;
            // Frontier + CSR offset reads: ~one 32-byte half-line per
            // frontier vertex (offsets of neighboring actives often share
            // lines).
            let frontier_bytes = frontier * 32.0;
            // Edge list reads: streamed lines, one partial line per vertex.
            let edge_bytes = (e / EDGES_PER_LINE as f64 + frontier) * LINE_BYTES as f64;
            // Random destination-property traffic: an L2 miss moves a full
            // line, a hit costs ~4 bytes of L2 bandwidth (not counted
            // against HBM).
            let random_bytes = e * (1.0 - hit) * LINE_BYTES as f64;
            // Property/frontier write-back.
            let write_bytes = frontier * 8.0;
            let it_bytes = frontier_bytes + edge_bytes + random_bytes + write_bytes;
            let t_mem = it_bytes / self.mem_bandwidth;
            let t_compute = e / self.edge_rate;
            seconds += t_mem.max(t_compute) * (1.0 + self.atomic_stall) + overhead;
            bytes += it_bytes as u64;
        }
        GpuRun {
            properties: golden.properties,
            seconds,
            bytes,
            traversed_edges: golden.traversed_edges,
            iterations: golden.iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalagraph_algo::algorithms::{Bfs, PageRank};
    use scalagraph_graph::{generators, Csr};

    #[test]
    fn results_match_reference_exactly() {
        let g = Csr::from_edges(500, &generators::uniform(500, 5000, 3));
        let algo = Bfs::from_root(0);
        let gpu = GunrockModel::v100().run(&algo, &g);
        let golden = ReferenceEngine::new().run(&algo, &g);
        assert_eq!(gpu.properties, golden.properties);
        assert_eq!(gpu.traversed_edges, golden.traversed_edges);
        assert!(gpu.seconds > 0.0);
        assert!(gpu.gteps() > 0.0);
    }

    #[test]
    fn many_iterations_pay_launch_overhead() {
        // A path graph: one vertex per frontier, hundreds of iterations.
        let path = Csr::from_edges(500, &generators::path(500));
        let dense = Csr::from_edges(500, &generators::uniform(500, 499, 9));
        let m = GunrockModel::v100();
        let slow = m.run(&Bfs::from_root(0), &path);
        let fast = m.run(&Bfs::from_root(0), &dense);
        // Same edge count, wildly different iteration counts.
        assert!(slow.iterations > 100);
        assert!(slow.seconds > 10.0 * fast.seconds);
    }

    #[test]
    fn larger_graphs_lose_l2_locality() {
        let m = GunrockModel::v100();
        assert!(m.l2_hit_rate(1_000) > m.l2_hit_rate(100_000_000));
        assert!(m.l2_hit_rate(100_000_000) >= 0.10);
    }

    #[test]
    fn pagerank_is_memory_bound_at_realistic_sizes() {
        let g = Csr::from_edges(2000, &generators::power_law(2000, 30_000, 0.8, 5));
        let gpu = GunrockModel::v100().run(&PageRank::new(3), &g);
        assert_eq!(gpu.iterations, 3);
        assert!(gpu.bytes > 3 * 30_000 * 4, "must count line traffic");
    }
}
