//! FPGA resource-utilization model, calibrated to the table in Figure 16.
//!
//! The paper reports post-synthesis utilization on the U280:
//!
//! | Accelerator     | LUT   | REG   | BRAM  |
//! |-----------------|-------|-------|-------|
//! | GraphDynS-128   | 22.8% | 11.6% | 74.7% |
//! | ScalaGraph-128  | 10.9% |  6.4% | 70.8% |
//! | GraphDynS-512   | 85.1% | 43.8% | 76.1% |
//! | ScalaGraph-512  | 39.2% | 22.9% | 73.2% |
//!
//! ScalaGraph scales linearly in PEs (mesh interconnect); GraphDynS beyond
//! 128 PEs is built as crossbar tiles joined by a mesh, so its cost is
//! per-tile. BRAM is dominated by the fixed scratchpad (6 MB of the U280's
//! 9 MB) plus small per-PE buffering.

/// Capacity of the target FPGA device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaDevice {
    /// Lookup tables available.
    pub luts: u64,
    /// Flip-flop registers available.
    pub regs: u64,
    /// Block RAM capacity in bytes.
    pub bram_bytes: u64,
}

/// The Xilinx Alveo U280 (XCU280): 1.3 M LUTs, 2.6 M registers, 9 MB BRAM
/// (Section V-A).
pub const U280: FpgaDevice = FpgaDevice {
    luts: 1_304_000,
    regs: 2_607_000,
    bram_bytes: 9 * 1024 * 1024,
};

/// Which accelerator's structure is being estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorKind {
    /// ScalaGraph: distributed scratchpads over a mesh; linear in PEs.
    ScalaGraph,
    /// GraphDynS: up to 128 PEs behind a full crossbar per tile; larger
    /// configurations replicate tiles and join them with a small mesh.
    GraphDyns,
}

/// Fractional utilization of each resource class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUtilization {
    /// LUT fraction used (0.0–1.0; may exceed 1.0 when over-subscribed).
    pub lut: f64,
    /// Register fraction used.
    pub reg: f64,
    /// BRAM fraction used.
    pub bram: f64,
}

impl ResourceUtilization {
    /// Whether the design fits the device with routing headroom. FPGA
    /// designs above ~90% LUT utilization generally fail to route.
    pub fn fits(&self) -> bool {
        self.lut <= 0.90 && self.reg <= 0.90 && self.bram <= 1.0
    }
}

/// Parameterized resource model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceModel {
    device: FpgaDevice,
}

// ScalaGraph linear fit through the Figure 16 points (128 and 512 PEs):
//   LUT(N) = 19_060 + 961 * N
//   REG(N) = 24_000 + 1_120 * N
const SG_LUT_BASE: f64 = 19_060.0;
const SG_LUT_PER_PE: f64 = 961.0;
const SG_REG_BASE: f64 = 24_000.0;
const SG_REG_PER_PE: f64 = 1_120.0;

// GraphDynS tile model (one tile holds up to 128 crossbar-connected PEs):
//   LUT_tile(n) = 30_000 + 961 * n + 8.8 * n^2   (297k at n = 128)
//   REG_tile(n) = 15_000 + 1_120 * n + 8.5 * n^2  (~151k at n = 128)
// Multi-tile designs pay tiles * tile cost plus a small inter-tile mesh;
// the 0.925 factor reproduces the published 512-PE point (85.1% LUT).
const GD_LUT_BASE: f64 = 30_000.0;
const GD_LUT_PER_PE: f64 = 961.0;
const GD_LUT_XBAR: f64 = 8.8;
const GD_REG_BASE: f64 = 15_000.0;
const GD_REG_PER_PE: f64 = 1_120.0;
const GD_REG_XBAR: f64 = 8.5;
const GD_TILE_SHARING: f64 = 0.925;
const GD_TILE_PES: usize = 128;

// BRAM: a fixed 6 MB scratchpad (Section V-A) plus per-PE line buffers.
// GraphDynS additionally spends ~0.7 MB of BRAM on its centralized VOQ and
// prefetch structures.
const SPD_BYTES: f64 = 6.0 * 1024.0 * 1024.0;
const SG_BRAM_PER_PE: f64 = 1_200.0;
const GD_BRAM_FIXED: f64 = 0.7 * 1024.0 * 1024.0;
const GD_BRAM_PER_PE: f64 = 350.0;

impl ResourceModel {
    /// Model for a given device.
    pub fn new(device: FpgaDevice) -> Self {
        ResourceModel { device }
    }

    /// Model for the Alveo U280.
    pub fn u280() -> Self {
        Self::new(U280)
    }

    /// The device being modelled.
    pub fn device(&self) -> FpgaDevice {
        self.device
    }

    /// Estimated utilization for `kind` with `pes` processing elements.
    ///
    /// # Panics
    ///
    /// Panics if `pes == 0`.
    pub fn utilization(&self, kind: AcceleratorKind, pes: usize) -> ResourceUtilization {
        assert!(pes > 0, "need at least one PE");
        let n = pes as f64;
        let (luts, regs, bram) = match kind {
            AcceleratorKind::ScalaGraph => (
                SG_LUT_BASE + SG_LUT_PER_PE * n,
                SG_REG_BASE + SG_REG_PER_PE * n,
                SPD_BYTES + SG_BRAM_PER_PE * n,
            ),
            AcceleratorKind::GraphDyns => {
                let tiles = pes.div_ceil(GD_TILE_PES);
                let per_tile = (pes as f64 / tiles as f64).ceil();
                let tile_lut =
                    GD_LUT_BASE + GD_LUT_PER_PE * per_tile + GD_LUT_XBAR * per_tile * per_tile;
                let tile_reg =
                    GD_REG_BASE + GD_REG_PER_PE * per_tile + GD_REG_XBAR * per_tile * per_tile;
                let sharing = if tiles > 1 { GD_TILE_SHARING } else { 1.0 };
                (
                    tile_lut * tiles as f64 * sharing,
                    tile_reg * tiles as f64 * sharing,
                    SPD_BYTES + GD_BRAM_FIXED + GD_BRAM_PER_PE * n,
                )
            }
        };
        ResourceUtilization {
            lut: luts / self.device.luts as f64,
            reg: regs / self.device.regs as f64,
            bram: bram / self.device.bram_bytes as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(x: f64) -> f64 {
        x * 100.0
    }

    #[test]
    fn scalagraph_matches_figure_16() {
        let m = ResourceModel::u280();
        let u128 = m.utilization(AcceleratorKind::ScalaGraph, 128);
        assert!((pct(u128.lut) - 10.9).abs() < 1.0, "lut {}", pct(u128.lut));
        assert!((pct(u128.reg) - 6.4).abs() < 1.0, "reg {}", pct(u128.reg));
        assert!(
            (pct(u128.bram) - 70.8).abs() < 4.0,
            "bram {}",
            pct(u128.bram)
        );
        let u512 = m.utilization(AcceleratorKind::ScalaGraph, 512);
        assert!((pct(u512.lut) - 39.2).abs() < 1.5, "lut {}", pct(u512.lut));
        assert!((pct(u512.reg) - 22.9).abs() < 1.5, "reg {}", pct(u512.reg));
        assert!(
            (pct(u512.bram) - 73.2).abs() < 4.0,
            "bram {}",
            pct(u512.bram)
        );
    }

    #[test]
    fn graphdyns_matches_figure_16() {
        let m = ResourceModel::u280();
        let u128 = m.utilization(AcceleratorKind::GraphDyns, 128);
        assert!((pct(u128.lut) - 22.8).abs() < 1.5, "lut {}", pct(u128.lut));
        assert!((pct(u128.reg) - 11.6).abs() < 1.5, "reg {}", pct(u128.reg));
        let u512 = m.utilization(AcceleratorKind::GraphDyns, 512);
        assert!((pct(u512.lut) - 85.1).abs() < 3.0, "lut {}", pct(u512.lut));
        assert!((pct(u512.reg) - 43.8).abs() < 3.0, "reg {}", pct(u512.reg));
    }

    #[test]
    fn paper_ratios_hold() {
        // "ScalaGraph requires 2.1x fewer LUTs and 1.8x fewer REGs than
        // GraphDynS" at equal PE counts.
        let m = ResourceModel::u280();
        let s = m.utilization(AcceleratorKind::ScalaGraph, 128);
        let g = m.utilization(AcceleratorKind::GraphDyns, 128);
        assert!(g.lut / s.lut > 1.8, "lut ratio {}", g.lut / s.lut);
        assert!(g.reg / s.reg > 1.5, "reg ratio {}", g.reg / s.reg);
    }

    #[test]
    fn scalagraph_fits_at_1024_graphdyns_overflows() {
        let m = ResourceModel::u280();
        assert!(m.utilization(AcceleratorKind::ScalaGraph, 1024).fits());
        // Beyond 1024 the LUTs exhaust (Section V-E).
        assert!(!m.utilization(AcceleratorKind::ScalaGraph, 2048).fits());
        assert!(!m.utilization(AcceleratorKind::GraphDyns, 1024).fits());
    }

    #[test]
    fn utilization_grows_monotonically() {
        let m = ResourceModel::u280();
        let mut last = 0.0;
        for pes in [32, 64, 128, 256, 512, 1024] {
            let u = m.utilization(AcceleratorKind::ScalaGraph, pes);
            assert!(u.lut > last);
            last = u.lut;
        }
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_panics() {
        let _ = ResourceModel::u280().utilization(AcceleratorKind::ScalaGraph, 0);
    }
}
