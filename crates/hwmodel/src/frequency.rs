//! Maximum-frequency model for accelerator interconnects on the Alveo U280.
//!
//! The paper reports post-synthesis maximum frequencies for several
//! interconnects and PE counts (Figure 4(a), Figure 8, Table IV). This
//! module fits those data points with the interconnects' asymptotic
//! hardware-complexity laws — O(N²) for a crossbar with VOQ, O(N·log N) for
//! a Benes network, O(N) for a 2D mesh — so intermediate and extrapolated
//! PE counts behave consistently with the published trend.
//!
//! Calibration targets (MHz):
//!
//! | PEs        | 32  | 64  | 128 | 256 | 512 | 1024 |
//! |------------|-----|-----|-----|-----|-----|------|
//! | Mesh       | 304 | 293 | 292 | 285 | 274 | 258  | (Table IV, ScalaGraph)
//! | Crossbar   | 270 | 227 | 112 | —   | —   | —    | (Table IV, GraphDynS; — = route failure)
//! | Benes      | degrades between the two, fails ≥512    | (Figure 8)

/// The interconnect families compared by Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterconnectKind {
    /// Full crossbar with virtual output queues, O(N²).
    Crossbar,
    /// Crossbar with `mux` PEs multiplexed per port (GraphPulse, Chronos),
    /// O((N/mux)²) plus multiplexing overhead.
    MultiStageCrossbar {
        /// PEs sharing one crossbar port.
        mux: usize,
    },
    /// Benes permutation network, O(N·log N).
    Benes,
    /// 2D mesh (ScalaGraph), O(N).
    Mesh,
    /// No interconnect at all: the "w/o crossbar" ablation of Figure 4,
    /// which holds ~300 MHz at any PE count (but computes wrong answers —
    /// it exists purely as a frequency upper bound).
    None,
}

/// Result of the modelled synthesis run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SynthesisOutcome {
    /// Placement and routing succeeded at this maximum frequency.
    Routed {
        /// Achievable clock in MHz.
        fmax_mhz: f64,
    },
    /// The router could not find a legal solution ("route failure" in
    /// Section II-B) — the configuration cannot be built on the U280.
    RouteFailure,
}

impl SynthesisOutcome {
    /// The frequency if routed, else `None`.
    pub fn frequency_mhz(&self) -> Option<f64> {
        match *self {
            SynthesisOutcome::Routed { fmax_mhz } => Some(fmax_mhz),
            SynthesisOutcome::RouteFailure => None,
        }
    }

    /// Whether synthesis succeeded.
    pub fn is_routed(&self) -> bool {
        matches!(self, SynthesisOutcome::Routed { .. })
    }
}

/// Unloaded logic fabric frequency on the U280 for this class of design.
const BASE_MHZ: f64 = 306.0;

/// Linear degradation per PE for the mesh (fit to Table IV endpoints).
const MESH_COEFF: f64 = 1.81e-4;

/// Quadratic degradation for the crossbar (fit to Table IV 32→128 points).
const XBAR_COEFF: f64 = 1.01e-4;

/// N·log₂N degradation for Benes (fit so 128 PEs lands between crossbar and
/// mesh, and 512 fails, per Figure 8).
const BENES_COEFF: f64 = 9.8e-4;

/// PE count at which the U280 router gives up on a full crossbar
/// (Section II-B: "if the number of PEs exceeds 256, the crossbar would
/// cause the route failure").
const XBAR_FAIL_PES: usize = 256;

/// PE count at which Benes and similar multi-stage networks fail
/// (Figure 8: "fail to compile in case of 512 PEs").
const BENES_FAIL_PES: usize = 512;

/// PE count exhausting the U280's LUTs for a mesh design (Section V-E:
/// "when the number of PEs exceeds 1,024, the LUT resources on FPGA will be
/// exhausted").
const MESH_FAIL_PES: usize = 1024;

/// Models the post-route maximum frequency of a `pes`-PE accelerator built
/// around `kind` on a Xilinx Alveo U280.
///
/// # Example
///
/// ```
/// use scalagraph_hwmodel::{max_frequency_mhz, InterconnectKind};
///
/// let mesh = max_frequency_mhz(InterconnectKind::Mesh, 1024);
/// assert!(mesh.frequency_mhz().unwrap() > 250.0);
/// let xbar = max_frequency_mhz(InterconnectKind::Crossbar, 256);
/// assert!(!xbar.is_routed());
/// ```
///
/// # Panics
///
/// Panics if `pes == 0` or `MultiStageCrossbar { mux: 0 }`.
pub fn max_frequency_mhz(kind: InterconnectKind, pes: usize) -> SynthesisOutcome {
    assert!(pes > 0, "need at least one PE");
    let n = pes as f64;
    match kind {
        InterconnectKind::None => SynthesisOutcome::Routed { fmax_mhz: 300.0 },
        InterconnectKind::Mesh => {
            if pes > MESH_FAIL_PES {
                SynthesisOutcome::RouteFailure
            } else {
                SynthesisOutcome::Routed {
                    fmax_mhz: BASE_MHZ / (1.0 + MESH_COEFF * n),
                }
            }
        }
        InterconnectKind::Benes => {
            if pes >= BENES_FAIL_PES {
                SynthesisOutcome::RouteFailure
            } else {
                SynthesisOutcome::Routed {
                    fmax_mhz: BASE_MHZ / (1.0 + BENES_COEFF * n * n.log2().max(1.0)),
                }
            }
        }
        InterconnectKind::Crossbar => {
            if pes >= XBAR_FAIL_PES {
                SynthesisOutcome::RouteFailure
            } else {
                SynthesisOutcome::Routed {
                    fmax_mhz: BASE_MHZ / (1.0 + XBAR_COEFF * n * n),
                }
            }
        }
        InterconnectKind::MultiStageCrossbar { mux } => {
            assert!(mux > 0, "mux factor must be positive");
            let radix = pes.div_ceil(mux);
            match max_frequency_mhz(InterconnectKind::Crossbar, radix) {
                // 5% penalty for the extra multiplexing stage in front of
                // each port.
                SynthesisOutcome::Routed { fmax_mhz } => SynthesisOutcome::Routed {
                    fmax_mhz: fmax_mhz * 0.95,
                },
                SynthesisOutcome::RouteFailure => SynthesisOutcome::RouteFailure,
            }
        }
    }
}

/// The paper's conservative operating clock: ScalaGraph is always run at
/// 250 MHz even though synthesis closes higher (Section V-A).
pub const OPERATING_CLOCK_MHZ: f64 = 250.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn freq(kind: InterconnectKind, pes: usize) -> f64 {
        max_frequency_mhz(kind, pes).frequency_mhz().unwrap()
    }

    #[test]
    fn mesh_matches_table_iv_within_tolerance() {
        // Table IV: 304, 293, 292, 285, 274, 258 MHz.
        let published = [
            (32, 304.0),
            (64, 293.0),
            (128, 292.0),
            (256, 285.0),
            (512, 274.0),
            (1024, 258.0),
        ];
        for (pes, mhz) in published {
            let modelled = freq(InterconnectKind::Mesh, pes);
            let err = (modelled - mhz).abs() / mhz;
            // The published points are noisy around the O(N) law (293 at 64
            // PEs but 292 at 128); 4% covers the residual.
            assert!(
                err < 0.04,
                "{pes} PEs: model {modelled:.1} vs paper {mhz} ({err:.3})"
            );
        }
    }

    #[test]
    fn crossbar_matches_table_iv_within_tolerance() {
        // Table IV: 270, 227, 112; tolerance is looser because the paper's
        // own points do not fit a clean quadratic either.
        let published = [(32, 270.0), (64, 227.0), (128, 112.0)];
        for (pes, mhz) in published {
            let modelled = freq(InterconnectKind::Crossbar, pes);
            let err = (modelled - mhz).abs() / mhz;
            assert!(err < 0.12, "{pes} PEs: model {modelled:.1} vs paper {mhz}");
        }
    }

    #[test]
    fn crossbar_route_fails_at_256() {
        assert!(max_frequency_mhz(InterconnectKind::Crossbar, 128).is_routed());
        assert!(!max_frequency_mhz(InterconnectKind::Crossbar, 256).is_routed());
        assert!(!max_frequency_mhz(InterconnectKind::Crossbar, 512).is_routed());
    }

    #[test]
    fn benes_between_crossbar_and_mesh_then_fails() {
        for pes in [64, 128, 256] {
            let b = freq(InterconnectKind::Benes, pes);
            let x = max_frequency_mhz(InterconnectKind::Crossbar, pes)
                .frequency_mhz()
                .unwrap_or(0.0);
            let m = freq(InterconnectKind::Mesh, pes);
            assert!(b > x, "{pes} PEs: benes {b} !> crossbar {x}");
            assert!(b < m, "{pes} PEs: benes {b} !< mesh {m}");
        }
        assert!(!max_frequency_mhz(InterconnectKind::Benes, 512).is_routed());
    }

    #[test]
    fn multistage_extends_reach_but_still_fails() {
        // mux=2 halves the radix: routes at 256 PEs, fails at 512.
        let k = InterconnectKind::MultiStageCrossbar { mux: 2 };
        assert!(max_frequency_mhz(k, 256).is_routed());
        assert!(!max_frequency_mhz(k, 512).is_routed());
        // And is slower than a plain crossbar of its radix.
        let ms = freq(k, 128);
        let xb = freq(InterconnectKind::Crossbar, 64);
        assert!(ms < xb);
    }

    #[test]
    fn mesh_supports_1024_but_not_beyond_on_u280() {
        assert!(freq(InterconnectKind::Mesh, 1024) > 250.0);
        assert!(!max_frequency_mhz(InterconnectKind::Mesh, 2048).is_routed());
    }

    #[test]
    fn without_crossbar_is_flat_300() {
        assert_eq!(freq(InterconnectKind::None, 4), 300.0);
        assert_eq!(freq(InterconnectKind::None, 512), 300.0);
    }

    #[test]
    fn frequency_is_monotonically_non_increasing_in_pes() {
        for kind in [
            InterconnectKind::Mesh,
            InterconnectKind::Benes,
            InterconnectKind::Crossbar,
        ] {
            let mut last = f64::INFINITY;
            let mut pes = 4;
            while let SynthesisOutcome::Routed { fmax_mhz } = max_frequency_mhz(kind, pes) {
                assert!(fmax_mhz <= last, "{kind:?} not monotone at {pes}");
                last = fmax_mhz;
                pes *= 2;
                if pes > 4096 {
                    break;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_panics() {
        let _ = max_frequency_mhz(InterconnectKind::Mesh, 0);
    }
}
