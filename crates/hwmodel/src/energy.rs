//! Power and energy model (Figure 15, Figure 16 right).
//!
//! Figure 16's pie chart attributes ScalaGraph-512 power as: HBM 65.43%,
//! SPD 16.30%, RU (NoC) 5.25%, GU 2.02%, dispatch 1.01%, prefetch/other
//! 9.99%. Energy for a workload is power × runtime; runtimes come from the
//! cycle-accurate simulators, so only board power needs modelling here.

use crate::resources::ResourceModel;

/// Fractional power attribution of a ScalaGraph board at 512 PEs
/// (Figure 16, right).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Off-chip HBM stacks.
    pub hbm: f64,
    /// Scratchpad memories.
    pub spd: f64,
    /// Routing units and links (the NoC).
    pub ru: f64,
    /// Graph (compute) units.
    pub gu: f64,
    /// Dispatcher modules.
    pub dispatch: f64,
    /// Prefetchers and miscellaneous logic.
    pub other: f64,
}

impl PowerBreakdown {
    /// The published ScalaGraph-512 breakdown.
    pub fn scalagraph() -> Self {
        PowerBreakdown {
            hbm: 0.6543,
            spd: 0.1630,
            ru: 0.0525,
            gu: 0.0202,
            dispatch: 0.0101,
            other: 0.0999,
        }
    }

    /// Sum of all components (should be ~1.0).
    pub fn total(&self) -> f64 {
        self.hbm + self.spd + self.ru + self.gu + self.dispatch + self.other
    }
}

/// The system whose power draw is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// ScalaGraph on the U280 (power scales mildly with PE count; HBM
    /// dominates).
    ScalaGraph,
    /// GraphDynS prototype on the U280 — its crossbar interconnect draws
    /// roughly twice ScalaGraph's NoC power at equal PE count ("the NoC
    /// used in ScalaGraph takes only 53.5% of the power consumed by the
    /// crossbar used in GraphDynS", Section V-B).
    GraphDyns,
    /// Gunrock on an NVIDIA V100 (32 GB HBM2).
    GunrockV100,
}

/// Board-level power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    resources: ResourceModel,
}

// Component powers for the FPGA accelerators, in watts, anchored so that
// ScalaGraph-512 lands at a realistic U280 board power (~45 W) with the
// Figure 16 breakdown.
const FPGA_HBM_W: f64 = 29.0; // both stacks, active
const SG_BASE_W: f64 = 5.2; // shell + prefetch + dispatch at any size
const SG_PER_PE_W: f64 = 0.0212; // SPD + GU + RU slice per PE
const GD_BASE_W: f64 = 5.2;
const GD_PER_PE_W: f64 = 0.0212;
// Crossbar premium per PE, set so ScalaGraph's NoC draws 53.5% of the
// GraphDynS crossbar power at equal PE count (Section V-B): the per-PE RU
// share is 0.0525 * 45 W / 512 = 4.6 mW, and 4.6 / (4.6 + 4.0) = 0.535.
const GD_XBAR_EXTRA_W: f64 = 0.0040;

// Effective V100 board power while running Gunrock-style graph workloads.
const V100_W: f64 = 135.0;

impl EnergyModel {
    /// Creates the model for the U280 device.
    pub fn u280() -> Self {
        EnergyModel {
            resources: ResourceModel::u280(),
        }
    }

    /// The resource model backing FPGA estimates.
    pub fn resources(&self) -> &ResourceModel {
        &self.resources
    }

    /// Average board power in watts for `system` configured with `pes`
    /// processing elements (`pes` ignored for the GPU).
    pub fn power_watts(&self, system: SystemKind, pes: usize) -> f64 {
        match system {
            SystemKind::ScalaGraph => FPGA_HBM_W + SG_BASE_W + SG_PER_PE_W * pes as f64,
            SystemKind::GraphDyns => {
                FPGA_HBM_W + GD_BASE_W + (GD_PER_PE_W + GD_XBAR_EXTRA_W) * pes as f64
            }
            SystemKind::GunrockV100 => V100_W,
        }
    }

    /// Energy in joules for a run of `seconds` on `system` with `pes` PEs.
    pub fn energy_joules(&self, system: SystemKind, pes: usize, seconds: f64) -> f64 {
        self.power_watts(system, pes) * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_to_one() {
        let b = PowerBreakdown::scalagraph();
        assert!((b.total() - 1.0).abs() < 1e-3, "total {}", b.total());
        assert!(b.hbm > 0.6, "HBM must dominate");
    }

    #[test]
    fn scalagraph_512_lands_near_45_watts() {
        let m = EnergyModel::u280();
        let w = m.power_watts(SystemKind::ScalaGraph, 512);
        assert!((40.0..50.0).contains(&w), "power {w}");
        // HBM share at 512 PEs should match the Figure 16 pie within a few
        // points.
        let hbm_share = FPGA_HBM_W / w;
        assert!((hbm_share - 0.6543).abs() < 0.03, "hbm share {hbm_share}");
    }

    #[test]
    fn crossbar_noc_power_premium() {
        // Section V-B: ScalaGraph's NoC draws 53.5% of GraphDynS' crossbar
        // power at 128 PEs. RU power share implies per-PE NoC watts; check
        // the premium ratio.
        let noc_sg = PowerBreakdown::scalagraph().ru * 45.0 / 512.0; // W per PE
        let noc_gd = noc_sg + GD_XBAR_EXTRA_W;
        let ratio = noc_sg / noc_gd;
        assert!((ratio - 0.535).abs() < 0.15, "NoC power ratio {ratio}");
    }

    #[test]
    fn gpu_draws_far_more_than_fpga() {
        let m = EnergyModel::u280();
        assert!(
            m.power_watts(SystemKind::GunrockV100, 0)
                > 2.0 * m.power_watts(SystemKind::ScalaGraph, 512)
        );
    }

    #[test]
    fn energy_scales_with_time() {
        let m = EnergyModel::u280();
        let e1 = m.energy_joules(SystemKind::ScalaGraph, 512, 1.0);
        let e2 = m.energy_joules(SystemKind::ScalaGraph, 512, 2.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn graphdyns_hungrier_than_scalagraph_at_equal_pes() {
        let m = EnergyModel::u280();
        assert!(
            m.power_watts(SystemKind::GraphDyns, 128) > m.power_watts(SystemKind::ScalaGraph, 128)
        );
    }
}
