//! FPGA hardware cost model (frequency, resources, power/energy).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod energy;
pub mod frequency;
pub mod resources;

pub use energy::SystemKind;
pub use energy::{EnergyModel, PowerBreakdown};
pub use frequency::{max_frequency_mhz, InterconnectKind, SynthesisOutcome, OPERATING_CLOCK_MHZ};
pub use resources::{AcceleratorKind, FpgaDevice, ResourceModel, ResourceUtilization, U280};
