//! End-to-end acceptance tests for the `scalagraph-serve` daemon, pinned
//! across the crate boundary on real sockets (ephemeral ports):
//!
//! 1. Identical concurrent HTTP `POST /run` requests produce byte-identical
//!    result JSON from exactly one graph build, with at least one memo hit.
//! 2. Malformed JSON, oversized bodies, unknown fields, and
//!    `validate()`-rejected scenarios all come back as typed protocol
//!    errors with the right HTTP status — never a dropped connection or a
//!    daemon panic — and the daemon keeps serving afterwards.
//! 3. A single jsonl session can mix control verbs and runs, survive a
//!    malformed line, and end with a `shutdown` that leaves the final
//!    service ledger balanced.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use scalagraph_suite::conformance::scenario::{
    AlgoSpec, ConfigSpec, Expectation, Family, ModeMatrix,
};
use scalagraph_suite::conformance::{GraphSource, GraphSpec, Scenario};
use scalagraph_suite::serve::protocol::extract_result;
use scalagraph_suite::serve::{ServeConfig, Server};

fn healthy(name: &str) -> Scenario {
    Scenario {
        name: name.into(),
        graph: GraphSpec {
            family: Family::Uniform {
                vertices: 64,
                edges: 256,
                seed: 7,
            },
            symmetrize: false,
            max_weight: 0,
            weight_seed: 0,
            source: GraphSource::Generate,
        },
        algo: AlgoSpec::Bfs { root: 0 },
        config: ConfigSpec::small(),
        fault_seed: 0,
        faults: Vec::new(),
        modes: ModeMatrix::sim_only(),
        expect: Expectation::Converge,
        strict_frontier: None,
        synthetic_bug: false,
        mutations: None,
    }
}

fn start_server() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

/// One HTTP exchange on a fresh connection; returns (status, body).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("header separator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, payload.to_string())
}

fn post_run(addr: &str, scenario_json: &str) -> (u16, String) {
    http(addr, "POST", "/run", scenario_json)
}

/// Scrapes one counter from `GET /metrics` text.
fn metric(addr: &str, name: &str) -> u64 {
    let (status, text) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "metrics endpoint must answer");
    let key = format!("scalagraph_serve_{name} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&key))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
}

#[test]
fn identical_concurrent_http_runs_share_one_build_and_replay_bytes() {
    let server = start_server();
    let addr = server.local_addr().to_string();
    let body = healthy("serve-e2e-shared").to_json_string();

    let clients: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let body = body.clone();
            std::thread::spawn(move || post_run(&addr, &body))
        })
        .collect();
    let responses: Vec<(u16, String)> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();

    let mut results = Vec::new();
    for (status, response) in &responses {
        assert_eq!(*status, 200, "run must succeed: {response}");
        assert!(
            response.starts_with("{\"ok\":true"),
            "protocol-level ok: {response}"
        );
        assert!(
            response.contains("\"status\":\"completed\""),
            "simulation completed: {response}"
        );
        results.push(
            extract_result(response)
                .expect("result payload")
                .to_string(),
        );
    }
    assert_eq!(
        results[0], results[1],
        "identical scenarios must replay byte-identical result JSON"
    );

    assert_eq!(
        metric(&addr, "graph_cache_builds"),
        1,
        "one CSR build total"
    );
    assert!(metric(&addr, "memo_hits") >= 1, "second request memoized");
    assert_eq!(metric(&addr, "jobs_completed"), 2);

    let (status, response) = http(&addr, "POST", "/shutdown", "");
    assert_eq!(status, 200, "shutdown acknowledged: {response}");
    let counters = server.join();
    assert!(counters.balanced(), "final ledger unbalanced: {counters}");
}

#[test]
fn wire_errors_are_typed_and_never_kill_the_daemon() {
    let server = start_server();
    let addr = server.local_addr().to_string();

    // Malformed JSON.
    let (status, body) = post_run(&addr, "{not json");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\":\"malformed_json\""), "{body}");

    // Unknown field at the scenario level (strict parsing).
    let mut with_extra = healthy("serve-e2e-extra").to_json_string();
    with_extra = with_extra.replacen('{', "{\n  \"surprise\": 1,", 1);
    let (status, body) = post_run(&addr, &with_extra);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\":\"unknown_field\""), "{body}");
    assert!(body.contains("surprise"), "{body}");

    // Scenario that parses but fails validate(): a 1-vertex graph.
    let mut tiny = healthy("serve-e2e-tiny");
    tiny.graph.family = Family::Uniform {
        vertices: 1,
        edges: 0,
        seed: 7,
    };
    let (status, body) = post_run(&addr, &tiny.to_json_string());
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\":\"invalid_scenario\""), "{body}");

    // Oversized body (limit shrunk via config is overkill; the default is
    // 1 MiB, so send 1 MiB + slack of padding).
    let huge = format!("{{\"pad\":\"{}\"}}", "x".repeat((1 << 20) + 1024));
    let (status, body) = post_run(&addr, &huge);
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("\"kind\":\"oversized\""), "{body}");

    // Unknown path and wrong method.
    let (status, body) = http(&addr, "GET", "/nope", "");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("\"kind\":\"not_found\""), "{body}");
    let (status, body) = http(&addr, "DELETE", "/run", "");
    assert_eq!(status, 405, "{body}");
    assert!(body.contains("\"kind\":\"method_not_allowed\""), "{body}");

    // After all of that abuse the daemon still completes a healthy run.
    let (status, body) = post_run(&addr, &healthy("serve-e2e-after").to_json_string());
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"completed\""), "{body}");

    assert!(metric(&addr, "requests_error") >= 6);
    server.stop();
    let counters = server.join();
    assert!(counters.balanced(), "final ledger unbalanced: {counters}");
}

#[test]
fn a_jsonl_session_mixes_controls_runs_and_survives_garbage() {
    let server = start_server();
    let addr = server.local_addr().to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
    let mut request = |line: &str| -> String {
        use std::io::BufRead as _;
        stream.write_all(line.as_bytes()).expect("write line");
        stream.write_all(b"\n").expect("write newline");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        assert!(
            response.ends_with('\n'),
            "responses are newline-framed: {response:?}"
        );
        response.trim_end().to_string()
    };

    assert_eq!(
        request("{\"control\":\"ping\"}"),
        "{\"ok\":true,\"control\":\"pong\"}"
    );

    // A malformed line gets a typed error and the session continues.
    let response = request("{broken");
    assert!(
        response.contains("\"kind\":\"malformed_json\""),
        "{response}"
    );

    // An envelope-level unknown key is refused, strictly.
    let response = request("{\"run\":{},\"priority\":\"high\",\"turbo\":true}");
    assert!(
        response.contains("\"kind\":\"unknown_field\""),
        "{response}"
    );
    assert!(response.contains("turbo"), "{response}");

    // Two identical runs on the same session: the second is a memo hit.
    let scenario = healthy("serve-e2e-jsonl")
        .to_json_string()
        .replace('\n', " ");
    let envelope = format!("{{\"run\":{scenario}}}");
    let first = request(&envelope);
    assert!(first.contains("\"memo_hit\":false"), "{first}");
    assert!(first.contains("\"status\":\"completed\""), "{first}");
    let second = request(&envelope);
    assert!(second.contains("\"memo_hit\":true"), "{second}");
    assert_eq!(
        extract_result(&first).expect("first result"),
        extract_result(&second).expect("second result"),
        "memoized replay must be byte-identical"
    );

    // Metrics over jsonl.
    let response = request("{\"control\":\"metrics\"}");
    assert!(
        response.contains("scalagraph_serve_memo_hits"),
        "{response}"
    );

    // Shutdown: acknowledged, then the daemon drains and the ledger closes.
    let response = request("{\"control\":\"shutdown\"}");
    assert!(response.contains("\"control\":\"shutdown\""), "{response}");
    let counters = server.join();
    assert!(counters.balanced(), "final ledger unbalanced: {counters}");
    assert_eq!(counters.submitted, 2, "two runs were admitted");
    assert_eq!(counters.completed, 2);
    assert!(counters.memo_hits >= 1);
}
