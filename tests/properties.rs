//! Property-based tests (proptest) on the invariants the whole stack rests
//! on: CSR structure, re-layout permutations, NoC delivery, aggregation
//! conservation laws, algorithm lattices, and simulator/reference
//! equivalence under randomized graphs and configurations.

use proptest::prelude::*;
use scalagraph_suite::algo::algorithms::{Bfs, ConnectedComponents, Sssp, UNREACHED};
use scalagraph_suite::algo::ReferenceEngine;
use scalagraph_suite::graph::{relayout, Csr, Edge, EdgeList};
use scalagraph_suite::noc::{Mesh, MeshConfig, Packet};
use scalagraph_suite::scalagraph::aggregate::AggregationBuffer;
use scalagraph_suite::scalagraph::{run_on, Mapping, ScalaGraphConfig};

fn arb_graph(max_v: usize, max_e: usize) -> impl Strategy<Value = Csr> {
    (2..max_v).prop_flat_map(move |v| {
        prop::collection::vec((0..v as u32, 0..v as u32, 0u32..256), 1..max_e).prop_map(
            move |triples| {
                let edges: Vec<Edge> = triples
                    .into_iter()
                    .map(|(s, d, w)| Edge::weighted(s, d, w))
                    .collect();
                Csr::from_edges(v, &edges)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csr_roundtrips_through_edge_iterator(g in arb_graph(80, 400)) {
        let edges: Vec<Edge> = g.edges().collect();
        let g2 = Csr::from_edges(g.num_vertices(), &edges);
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn csr_offsets_are_consistent(g in arb_graph(80, 400)) {
        let mut total = 0usize;
        for v in g.vertices() {
            prop_assert_eq!(g.neighbors(v).len(), g.out_degree(v));
            total += g.out_degree(v);
        }
        prop_assert_eq!(total, g.num_edges());
        let ind: u32 = g.in_degrees().iter().sum();
        prop_assert_eq!(ind as usize, g.num_edges());
    }

    #[test]
    fn relayout_is_adjacency_preserving(g in arb_graph(60, 300), lanes in 1usize..20) {
        let mut after = g.clone();
        relayout::degree_aware_relayout(&mut after, lanes, |v| (v as usize) % lanes);
        for v in g.vertices() {
            let mut a = g.neighbors(v).to_vec();
            let mut b = after.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn mesh_delivers_exactly_once(
        rows in 1usize..5,
        cols in 1usize..5,
        routes in prop::collection::vec((0usize..25, 0usize..25), 1..40)
    ) {
        let n = rows * cols;
        let mut mesh = Mesh::new(MeshConfig::new(rows, cols));
        let mut to_send: Vec<(usize, Packet)> = routes
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| {
                (s % n, Packet { dst: d % n, payload: i as u64, inject_cycle: 0 })
            })
            .collect();
        let total = to_send.len() as u64;
        let mut got = Vec::new();
        for _ in 0..10_000 {
            let mut rest = Vec::new();
            for (src, pkt) in to_send.drain(..) {
                if !mesh.try_inject(src, pkt) {
                    rest.push((src, pkt));
                }
            }
            to_send = rest;
            mesh.step();
            for node in 0..n {
                while let Some(p) = mesh.pop_delivered(node) {
                    prop_assert_eq!(p.dst, node);
                    got.push(p.payload);
                }
            }
            if to_send.is_empty() && mesh.in_flight_empty() {
                break;
            }
        }
        got.sort_unstable();
        prop_assert_eq!(got.len() as u64, total);
        for (i, &p) in got.iter().enumerate() {
            prop_assert_eq!(p, i as u64);
        }
    }

    #[test]
    fn aggregation_conserves_sums(
        regs in 0usize..20,
        stream in prop::collection::vec((0u32..32, 1u64..1000), 1..200)
    ) {
        let mut agg: AggregationBuffer<u64> = AggregationBuffer::new(regs);
        let mut injected = 0u64;
        for &(dst, val) in &stream {
            agg.push(dst, val, |a, b| a + b);
            injected += val;
        }
        let mut drained = 0u64;
        while let Some(u) = agg.drain_one() {
            drained += u.value;
        }
        prop_assert_eq!(drained, injected);
    }

    #[test]
    fn aggregation_min_never_invents_values(
        regs in 0usize..20,
        stream in prop::collection::vec((0u32..16, 0u32..1000), 1..100)
    ) {
        let mut agg: AggregationBuffer<u32> = AggregationBuffer::new(regs);
        for &(dst, val) in &stream {
            agg.push(dst, val, |a, b| a.min(b));
        }
        while let Some(u) = agg.drain_one() {
            prop_assert!(
                stream.iter().any(|&(d, v)| d == u.dst && v >= u.value),
                "drained ({}, {}) has no witness", u.dst, u.value
            );
            prop_assert!(stream.iter().filter(|&&(d, _)| d == u.dst)
                .map(|&(_, v)| v).min().unwrap() <= u.value);
        }
    }

    #[test]
    fn bfs_levels_satisfy_edge_relaxation(g in arb_graph(60, 300)) {
        let run = ReferenceEngine::new().run(&Bfs::from_root(0), &g);
        for e in g.edges() {
            let (ls, ld) = (run.properties[e.src as usize], run.properties[e.dst as usize]);
            if ls != UNREACHED {
                prop_assert!(ld <= ls + 1, "edge ({},{}) violates BFS: {} -> {}", e.src, e.dst, ls, ld);
            }
        }
        prop_assert_eq!(run.properties[0], 0);
    }

    #[test]
    fn sssp_distances_satisfy_triangle_inequality(g in arb_graph(50, 250)) {
        let run = ReferenceEngine::new().run(&Sssp::from_root(0), &g);
        for v in g.vertices() {
            for (i, &dst) in g.neighbors(v).iter().enumerate() {
                let w = g.edge_weights(v).map(|ws| ws[i]).unwrap_or(0);
                let (ds, dd) = (run.properties[v as usize], run.properties[dst as usize]);
                if ds != UNREACHED {
                    prop_assert!(dd <= ds.saturating_add(w));
                }
            }
        }
    }

    #[test]
    fn cc_labels_are_class_consistent(g in arb_graph(40, 200)) {
        let mut list = EdgeList::new(g.num_vertices());
        for e in g.edges() {
            list.push(e);
        }
        list.symmetrize();
        let sym = Csr::from_edge_list(&list);
        let run = ReferenceEngine::new().run(&ConnectedComponents::new(), &sym);
        // Neighbors share a label, and each label is the minimum id of its
        // class (so it names a real vertex inside the class).
        for e in sym.edges() {
            prop_assert_eq!(run.properties[e.src as usize], run.properties[e.dst as usize]);
        }
        for (v, &label) in run.properties.iter().enumerate() {
            prop_assert!(label as usize <= v);
            prop_assert_eq!(run.properties[label as usize], label);
        }
    }

    #[test]
    fn simulator_equals_reference_on_random_graphs_and_configs(
        g in arb_graph(60, 400),
        pes_pow in 0u32..3,
        mapping_idx in 0usize..3,
        regs in 0usize..20,
        width in 1usize..17,
        pipe in any::<bool>(),
    ) {
        let algo = Bfs::from_root(0);
        let golden = ReferenceEngine::new().run(&algo, &g);
        let mut cfg = ScalaGraphConfig::with_pes(32 << pes_pow);
        cfg.mapping = Mapping::ALL[mapping_idx];
        cfg.aggregation_registers = regs;
        cfg.max_scheduled_vertices = width;
        cfg.inter_phase_pipelining = pipe;
        let sim = run_on(&algo, &g, cfg);
        prop_assert_eq!(sim.properties, golden.properties);
    }

    #[test]
    fn sliced_simulator_equals_reference(
        g in arb_graph(60, 300),
        capacity in 5usize..40,
    ) {
        let algo = Bfs::from_root(0);
        let golden = ReferenceEngine::new().run(&algo, &g);
        let mut cfg = ScalaGraphConfig::with_pes(32);
        cfg.spd_capacity_vertices = capacity;
        let sim = run_on(&algo, &g, cfg);
        prop_assert_eq!(sim.properties, golden.properties);
    }

    #[test]
    fn fast_forward_is_bit_identical_on_random_configs(
        g in arb_graph(60, 400),
        pes_pow in 0u32..3,
        mapping_idx in 0usize..3,
        regs in 0usize..20,
        width in 1usize..17,
        pipe in any::<bool>(),
        latency in 4u32..256,
    ) {
        use scalagraph_suite::mem::HbmConfig;
        use scalagraph_suite::scalagraph::MemoryPreset;
        let algo = Bfs::from_root(0);
        let mut cfg = ScalaGraphConfig::with_pes(32 << pes_pow);
        cfg.mapping = Mapping::ALL[mapping_idx];
        cfg.aggregation_registers = regs;
        cfg.max_scheduled_vertices = width;
        cfg.inter_phase_pipelining = pipe;
        // Randomized memory latency so the idle windows fast-forward skips
        // vary from none to hundreds of cycles.
        let mut hbm = HbmConfig::u280(cfg.effective_clock_mhz() * 1e6);
        hbm.latency_cycles = latency;
        cfg.memory = MemoryPreset::Custom(hbm);
        cfg.fast_forward = false;
        let slow = run_on(&algo, &g, cfg.clone());
        cfg.fast_forward = true;
        let fast = run_on(&algo, &g, cfg);
        prop_assert_eq!(&fast.properties, &slow.properties);
        prop_assert_eq!(&fast.frontier_sizes, &slow.frontier_sizes);
        prop_assert_eq!(fast.stats, slow.stats);
    }

    #[test]
    fn event_driven_is_bit_identical_including_telemetry(
        g in arb_graph(60, 400),
        pes_pow in 0u32..3,
        mapping_idx in 0usize..3,
        regs in 0usize..20,
        width in 1usize..17,
        pipe in any::<bool>(),
        window in 16u64..200,
    ) {
        use scalagraph_suite::scalagraph::Simulator;
        use scalagraph_suite::telemetry::Recorder;
        let algo = Bfs::from_root(0);
        let mut cfg = ScalaGraphConfig::with_pes(32 << pes_pow);
        cfg.mapping = Mapping::ALL[mapping_idx];
        cfg.aggregation_registers = regs;
        cfg.max_scheduled_vertices = width;
        cfg.inter_phase_pipelining = pipe;
        let run = |event: bool| {
            let mut c = cfg.clone();
            c.fast_forward = event;
            c.event_driven = event;
            let mut rec = Recorder::new(window);
            let r = Simulator::try_new(&algo, &g, c)
                .and_then(|mut s| s.try_run_with(&mut rec))
                .expect("run converges");
            (r, rec)
        };
        let (stepped, rec_s) = run(false);
        let (event, rec_e) = run(true);
        prop_assert_eq!(&event.properties, &stepped.properties);
        prop_assert_eq!(&event.frontier_sizes, &stepped.frontier_sizes);
        prop_assert_eq!(event.stats, stepped.stats);
        // The recorded telemetry stream — every window row, every span —
        // must be bit-identical too; only the event-core diagnostic rows
        // are mode-specific.
        prop_assert_eq!(rec_e.tile_windows(), rec_s.tile_windows());
        prop_assert_eq!(rec_e.hbm_windows(), rec_s.hbm_windows());
        prop_assert_eq!(rec_e.link_windows(), rec_s.link_windows());
        prop_assert_eq!(rec_e.spans(), rec_s.spans());
        prop_assert_eq!(rec_e.summary(), rec_s.summary());
        prop_assert_eq!(rec_s.event_core_totals(), (0, 0));
        // Event-core accounting closes: every unit on every cycle is
        // either dispatched or skipped.
        let (dispatched, skipped) = rec_e.event_core_totals();
        let p = &cfg.placement;
        let units = (p.tiles * p.rows_per_tile + 4 * p.num_pes()) as u64;
        prop_assert_eq!(dispatched + skipped, units * event.stats.cycles);
    }

    #[test]
    fn event_driven_cancellation_yields_a_prefix_telemetry_stream(
        g in arb_graph(60, 300),
        window in 16u64..128,
        frac in 2u64..5,
    ) {
        use scalagraph_suite::scalagraph::{SimError, Simulator};
        use scalagraph_suite::telemetry::Recorder;
        let algo = Bfs::from_root(0);
        let mut cfg = ScalaGraphConfig::with_pes(32);
        cfg.fast_forward = true;
        cfg.event_driven = true;
        let mut full_rec = Recorder::new(window);
        let full = Simulator::try_new(&algo, &g, cfg.clone())
            .and_then(|mut s| s.try_run_with(&mut full_rec))
            .expect("full run converges");
        if full.stats.cycles <= frac {
            // Degenerate run too short to interrupt mid-flight.
            return Ok(());
        }
        let limit = (full.stats.cycles / frac).max(1);
        cfg.cycle_limit = Some(limit);
        let mut part_rec = Recorder::new(window);
        match Simulator::try_new(&algo, &g, cfg)
            .and_then(|mut s| s.try_run_with(&mut part_rec))
        {
            Err(SimError::DeadlineExceeded { cycle, partial }) => {
                prop_assert_eq!(cycle, limit);
                prop_assert_eq!(partial.cycles, limit);
            }
            other => prop_assert!(false, "expected DeadlineExceeded, got {:?}", other),
        }
        // Up to the interruption the machines are the same machine, so
        // every fully-completed window of the interrupted run must appear
        // verbatim in the full run's stream: a strict prefix, with at most
        // one trailing partial window beyond it.
        let complete = limit / window;
        let prefix = |rows: &[scalagraph_suite::telemetry::EventWindowRow]| {
            rows.iter().take_while(|r| r.window < complete).copied().collect::<Vec<_>>()
        };
        prop_assert_eq!(prefix(part_rec.event_windows()), prefix(full_rec.event_windows()));
        prop_assert!(part_rec.event_windows().iter().all(|r| r.window <= complete));
        let tile_prefix = |rows: &[scalagraph_suite::telemetry::TileWindowRow]| {
            rows.iter().take_while(|r| r.window < complete).copied().collect::<Vec<_>>()
        };
        prop_assert_eq!(tile_prefix(part_rec.tile_windows()), tile_prefix(full_rec.tile_windows()));
    }
}

use scalagraph_suite::noc::{BflyPacket, Butterfly, Crossbar, CrossbarKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn torus_delivers_exactly_once(
        rows in 2usize..5,
        cols in 2usize..5,
        routes in prop::collection::vec((0usize..25, 0usize..25), 1..40)
    ) {
        let n = rows * cols;
        let mut mesh = Mesh::new(MeshConfig::torus(rows, cols));
        let mut to_send: Vec<(usize, Packet)> = routes
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| {
                (s % n, Packet { dst: d % n, payload: i as u64, inject_cycle: 0 })
            })
            .collect();
        let total = to_send.len() as u64;
        let mut got = Vec::new();
        for _ in 0..20_000 {
            let mut rest = Vec::new();
            for (src, pkt) in to_send.drain(..) {
                if !mesh.try_inject(src, pkt) {
                    rest.push((src, pkt));
                }
            }
            to_send = rest;
            mesh.step();
            for node in 0..n {
                while let Some(p) = mesh.pop_delivered(node) {
                    prop_assert_eq!(p.dst, node);
                    got.push(p.payload);
                }
            }
            if to_send.is_empty() && mesh.in_flight_empty() {
                break;
            }
        }
        got.sort_unstable();
        prop_assert_eq!(got.len() as u64, total, "torus dropped or duplicated packets");
    }

    #[test]
    fn butterfly_delivers_exactly_once(
        log_ports in 1u32..5,
        routes in prop::collection::vec((0usize..16, 0usize..16), 1..50)
    ) {
        let ports = 1usize << log_ports;
        let mut net = Butterfly::new(ports);
        let mut to_send: Vec<(usize, BflyPacket)> = routes
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| {
                (s % ports, BflyPacket { dst: d % ports, payload: i as u64, inject_cycle: 0 })
            })
            .collect();
        let total = to_send.len() as u64;
        let mut got = Vec::new();
        for _ in 0..20_000 {
            let mut rest = Vec::new();
            for (src, pkt) in to_send.drain(..) {
                if !net.try_inject(src, pkt) {
                    rest.push((src, pkt));
                }
            }
            to_send = rest;
            net.step();
            for port in 0..ports {
                while let Some(p) = net.pop_delivered(port) {
                    prop_assert_eq!(p.dst, port);
                    got.push(p.payload);
                }
            }
            if to_send.is_empty() && net.in_flight_empty() {
                break;
            }
        }
        got.sort_unstable();
        prop_assert_eq!(got.len() as u64, total, "butterfly dropped or duplicated packets");
    }

    #[test]
    fn crossbar_delivers_exactly_once_in_both_flavors(
        inputs in 1usize..9,
        outputs in 1usize..9,
        mux in 1usize..4,
        routes in prop::collection::vec((0usize..8, 0usize..8), 1..40)
    ) {
        for kind in [CrossbarKind::Full, CrossbarKind::MultiStage { mux }] {
            let mut xbar = Crossbar::new(inputs, outputs, kind);
            let mut to_send: Vec<(usize, usize, u64)> = routes
                .iter()
                .enumerate()
                .map(|(i, &(s, d))| (s % inputs, d % outputs, i as u64))
                .collect();
            let total = to_send.len();
            let mut got = Vec::new();
            for _ in 0..20_000 {
                to_send.retain(|&(s, d, p)| !xbar.try_inject(s, d, p));
                xbar.step();
                for out in 0..outputs {
                    while let Some(p) = xbar.pop_delivered(out) {
                        prop_assert_eq!(p.dst, out);
                        got.push(p.payload);
                    }
                }
                if to_send.is_empty() && xbar.in_flight_empty() {
                    break;
                }
            }
            got.sort_unstable();
            prop_assert_eq!(got.len(), total, "{:?} dropped or duplicated packets", kind);
            got.clear();
        }
    }

    #[test]
    fn hbm_conserves_requests(
        jitter in 0u32..16,
        requests in prop::collection::vec(0usize..4, 1..60)
    ) {
        use scalagraph_suite::mem::{Hbm, HbmConfig, MemRequest};
        let mut hbm = Hbm::new(
            HbmConfig {
                channels: 4,
                bytes_per_cycle_per_channel: 40.0,
                latency_cycles: 6,
                queue_depth: 5,
                latency_jitter: 0,
            }
            .with_jitter(jitter),
        );
        let total = requests.len() as u64;
        let mut pending: Vec<(usize, u64)> = requests
            .iter()
            .enumerate()
            .map(|(i, &ch)| (ch, i as u64))
            .collect();
        let mut done = 0u64;
        for _ in 0..20_000 {
            pending.retain(|&(ch, tag)| !hbm.try_request(ch, MemRequest::read(tag, 64)));
            hbm.step();
            for ch in 0..4 {
                while hbm.pop_ready(ch).is_some() {
                    done += 1;
                }
            }
            if pending.is_empty() && hbm.is_idle() {
                break;
            }
        }
        prop_assert_eq!(done, total, "memory dropped or duplicated requests");
        prop_assert_eq!(hbm.stats().reads, total);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Conformance harness: any sampled scenario must survive JSON
    // serialize -> deserialize -> rerun with bit-identical oracle reports.
    // The sampler maps every u64 onto a well-formed scenario, so the seed
    // space IS the scenario space.
    #[test]
    fn conformance_scenarios_survive_round_trip_and_rerun(seed in any::<u64>()) {
        use scalagraph_suite::conformance::{run_scenario, sample_scenario, Scenario, SplitMix64};
        let scenario = sample_scenario(&mut SplitMix64::new(seed), 0);
        let text = scenario.to_json_string();
        let back = Scenario::from_json_str(&text).unwrap();
        prop_assert_eq!(&back, &scenario);
        prop_assert_eq!(back.to_json_string(), text, "canonical form must be a fixpoint");
        let original = run_scenario(&scenario).unwrap();
        let replayed = run_scenario(&back).unwrap();
        prop_assert_eq!(original, replayed, "deserialized scenario must rerun identically");
    }
}
