//! Acceptance tests for the resilient batch-execution runtime, pinned
//! across the crate boundary:
//!
//! 1. A batch over the whole conformance corpus plus a wedge-pinned
//!    scenario under a 2-second per-job deadline ends with the wedged job
//!    `deadline-exceeded`, every other job completed normally, and a
//!    balanced outcome ledger (`submitted == completed + failed +
//!    cancelled + rejected`).
//! 2. An injected worker panic is contained as a structured failure
//!    without poisoning the pool: the same worker keeps serving jobs and
//!    every spawned worker joins.
//! 3. Deterministic cancellation is bit-identical (property-based): a run
//!    cut at simulated cycle K reports `DeadlineExceeded` on exactly K in
//!    stepped and fast-forward execution with identical partial stats,
//!    and its telemetry windows are a prefix of the full run's.

use std::fs;
use std::path::Path;
use std::time::Duration;

use proptest::prelude::*;
use scalagraph_suite::algo::algorithms::Bfs;
use scalagraph_suite::conformance::scenario::{
    AlgoSpec, ConfigSpec, Expectation, Family, ModeMatrix,
};
use scalagraph_suite::conformance::{GraphSource, GraphSpec, Scenario};
use scalagraph_suite::graph::{generators, Csr};
use scalagraph_suite::runtime::{BatchRuntime, FailureReason, JobSpec, JobStatus, RuntimeConfig};
use scalagraph_suite::scalagraph::{ScalaGraphConfig, SimError, Simulator};
use scalagraph_suite::telemetry::Recorder;

/// Loads every scenario of the repository's conformance corpus, in
/// deterministic (sorted filename) order.
fn corpus_scenarios() -> Vec<Scenario> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut paths: Vec<_> = fs::read_dir(&dir)
        .expect("corpus/ directory must exist")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus/ must contain scenarios");
    paths
        .iter()
        .map(|p| {
            let text = fs::read_to_string(p).expect("readable corpus file");
            Scenario::from_json_str(&text).unwrap_or_else(|e| panic!("{}: {e}", p.display()))
        })
        .collect()
}

/// A small healthy scenario that converges in milliseconds.
fn healthy(name: &str, seed: u64) -> Scenario {
    Scenario {
        name: name.into(),
        graph: GraphSpec {
            family: Family::Uniform {
                vertices: 64,
                edges: 256,
                seed,
            },
            symmetrize: false,
            max_weight: 0,
            weight_seed: 0,
            source: GraphSource::Generate,
        },
        algo: AlgoSpec::Bfs { root: 0 },
        config: ConfigSpec::small(),
        fault_seed: 0,
        faults: Vec::new(),
        modes: ModeMatrix::sim_only(),
        expect: Expectation::Converge,
        strict_frontier: None,
        synthetic_bug: false,
        mutations: None,
    }
}

#[test]
fn batch_over_corpus_deadline_kills_the_wedge_and_balances() {
    let mut specs = Vec::new();
    let mut wedge_names = Vec::new();
    for mut scenario in corpus_scenarios() {
        if matches!(scenario.expect, Expectation::Wedge { .. }) {
            // Pin the wedge open: disable the watchdog (which would
            // otherwise diagnose the stall as a structured failure) and
            // force plain stepped execution — the event-driven core
            // requires a live watchdog, so it is switched off too — so
            // only the runtime's wall-clock deadline can end the job.
            scenario.config.watchdog_stall_cycles = 0;
            scenario.modes.fast_forward = false;
            scenario.modes.event_driven = false;
            wedge_names.push(scenario.name.clone());
        }
        specs.push(JobSpec::new(scenario));
    }
    assert!(
        !wedge_names.is_empty(),
        "corpus must contain a wedge scenario"
    );

    let submitted = specs.len();
    let config = RuntimeConfig {
        workers: 4,
        queue_capacity: submitted,
        default_deadline: Some(Duration::from_secs(2)),
        ..RuntimeConfig::default()
    };
    let report = BatchRuntime::new(config).run(specs);

    assert!(report.balanced(), "{}", report.render());
    assert_eq!(report.workers_spawned, 4);
    assert_eq!(
        report.workers_joined, report.workers_spawned,
        "no leaked workers"
    );
    assert_eq!(report.outcomes.len(), submitted);

    for outcome in &report.outcomes {
        if wedge_names.contains(&outcome.name) {
            match &outcome.status {
                JobStatus::DeadlineExceeded { at_cycle: Some(c) } => {
                    assert!(*c >= 1, "engine observed the expiry mid-run");
                }
                other => panic!("wedge must be deadline-killed, got {other:?}"),
            }
            assert!(
                outcome.wall_ms >= 1000,
                "the wedge should have run until its 2s deadline, ended after {}ms",
                outcome.wall_ms
            );
        } else {
            assert!(
                matches!(outcome.status, JobStatus::Completed { .. }),
                "healthy corpus job {} must complete, got {:?}",
                outcome.name,
                outcome.status
            );
        }
    }

    let wedges = wedge_names.len() as u64;
    let c = &report.counters;
    assert_eq!(c.submitted, submitted as u64);
    assert_eq!(c.completed, submitted as u64 - wedges);
    assert_eq!(
        c.cancelled, wedges,
        "every wedge lands in the cancelled bucket"
    );
    assert_eq!(c.deadline_kills, wedges);
    assert_eq!(c.failed, 0);
    assert_eq!(c.rejected, 0);
    assert_eq!(c.panics_contained, 0);
}

#[test]
fn injected_worker_panic_is_contained_without_poisoning_the_pool() {
    // One worker, a panic bomb in the middle: the SAME thread must survive
    // the panic and complete the job behind it.
    let mut bomb = JobSpec::new(healthy("panic-bomb", 5));
    bomb.inject_panic = true;
    let specs = vec![
        JobSpec::new(healthy("before-bomb", 3)),
        bomb,
        JobSpec::new(healthy("after-bomb", 4)),
    ];
    let config = RuntimeConfig {
        workers: 1,
        queue_capacity: 8,
        ..RuntimeConfig::default()
    };
    let report = BatchRuntime::new(config).run(specs);

    assert!(report.balanced(), "{}", report.render());
    assert_eq!(report.workers_spawned, 1);
    assert_eq!(report.workers_joined, 1, "the panicking worker still joins");
    assert_eq!(report.counters.panics_contained, 1);
    assert_eq!(report.counters.completed, 2);
    assert_eq!(report.counters.failed, 1);

    assert!(matches!(
        report.outcomes[0].status,
        JobStatus::Completed { .. }
    ));
    match &report.outcomes[1].status {
        JobStatus::Failed {
            reason: FailureReason::Panicked { message },
        } => assert!(message.contains("injected"), "{message}"),
        other => panic!("bomb must fail as a contained panic, got {other:?}"),
    }
    assert!(
        matches!(report.outcomes[2].status, JobStatus::Completed { .. }),
        "the worker that caught the panic keeps serving jobs"
    );
}

/// Rows of a telemetry table whose window closed strictly before `closed`.
fn closed_prefix<R: Copy>(rows: &[R], closed: u64, window_of: impl Fn(&R) -> u64) -> Vec<R> {
    rows.iter()
        .filter(|r| window_of(r) < closed)
        .copied()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cancellation_at_cycle_k_is_bit_identical_across_modes_and_a_prefix_of_the_full_run(
        seed in 0u64..6,
        num in 1u64..8,
    ) {
        const WINDOW: u64 = 64;
        let g = Csr::from_edges(300, &generators::uniform(300, 2200, seed));
        let algo = Bfs::from_root(0);
        let cfg = ScalaGraphConfig::with_pes(32);

        // The uninterrupted run, recorded.
        let mut full_rec = Recorder::new(WINDOW);
        let full = Simulator::try_new(&algo, &g, cfg.clone())
            .and_then(|mut s| s.try_run_with(&mut full_rec))
            .expect("full run converges");
        prop_assert!(full.stats.cycles > 8, "graph too small to interrupt");
        let k = (full.stats.cycles * num / 8).max(1);

        // The same run cut at simulated cycle K, stepped and fast-forward.
        let run_limited = |fast_forward: bool| {
            let mut c = cfg.clone();
            c.cycle_limit = Some(k);
            c.fast_forward = fast_forward;
            let mut rec = Recorder::new(WINDOW);
            let err = Simulator::try_new(&algo, &g, c)
                .and_then(|mut s| s.try_run_with(&mut rec))
                .expect_err("cycle limit below convergence must interrupt");
            (err, rec)
        };
        let (err_stepped, rec_stepped) = run_limited(false);
        let (err_ff, rec_ff) = run_limited(true);

        // Typed error on exactly cycle K, identical partial stats in both
        // execution modes.
        match (&err_stepped, &err_ff) {
            (
                SimError::DeadlineExceeded { cycle: c1, partial: p1 },
                SimError::DeadlineExceeded { cycle: c2, partial: p2 },
            ) => {
                prop_assert_eq!(*c1, k);
                prop_assert_eq!(*c2, k);
                prop_assert_eq!(p1, p2, "partial stats diverge across modes");
            }
            other => prop_assert!(false, "expected DeadlineExceeded twice, got {:?}", other),
        }

        // Telemetry of the interrupted run is bit-identical across modes...
        prop_assert_eq!(rec_stepped.run_cycles(), k);
        prop_assert_eq!(rec_stepped.run_cycles(), rec_ff.run_cycles());
        prop_assert_eq!(rec_stepped.tile_windows(), rec_ff.tile_windows());
        prop_assert_eq!(rec_stepped.hbm_windows(), rec_ff.hbm_windows());
        prop_assert_eq!(rec_stepped.link_windows(), rec_ff.link_windows());

        // ...and every fully-closed window is identical to the same window
        // of the uninterrupted run: cancellation only truncates history, it
        // never rewrites it. (The final window is excluded: it may be
        // partial in the interrupted run.)
        let closed = (k / WINDOW).saturating_sub(1);
        prop_assert_eq!(
            closed_prefix(rec_stepped.tile_windows(), closed, |r| r.window),
            closed_prefix(full_rec.tile_windows(), closed, |r| r.window)
        );
        prop_assert_eq!(
            closed_prefix(rec_stepped.hbm_windows(), closed, |r| r.window),
            closed_prefix(full_rec.hbm_windows(), closed, |r| r.window)
        );
        prop_assert_eq!(
            closed_prefix(rec_stepped.link_windows(), closed, |r| r.window),
            closed_prefix(full_rec.link_windows(), closed, |r| r.window)
        );
    }
}
