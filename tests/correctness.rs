//! Cross-system correctness: every simulator (ScalaGraph, GraphDynS,
//! Gunrock model) must produce results identical to the golden reference
//! engine, for every algorithm, across graph families.

use scalagraph_suite::algo::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
use scalagraph_suite::algo::{Algorithm, ReferenceEngine};
use scalagraph_suite::baselines::{GraphDyns, GraphDynsConfig, GunrockModel};
use scalagraph_suite::graph::{generators, Csr, Dataset, EdgeList};
use scalagraph_suite::scalagraph::{run_on, ScalaGraphConfig};

fn families(seed: u64) -> Vec<(&'static str, Csr)> {
    vec![
        (
            "uniform",
            Csr::from_edges(400, &generators::uniform(400, 3000, seed)),
        ),
        (
            "power_law",
            Csr::from_edges(400, &generators::power_law(400, 3000, 0.85, seed)),
        ),
        ("tree", Csr::from_edges(255, &generators::binary_tree(255))),
        ("grid", Csr::from_edges(144, &generators::grid(12, 12))),
        ("star", Csr::from_edges(200, &generators::star(200))),
        ("path", Csr::from_edges(120, &generators::path(120))),
    ]
}

fn check_exact<A: Algorithm<Prop = u32>>(algo: &A, graph: &Csr, label: &str) {
    let golden = ReferenceEngine::new().run(algo, graph);
    let sg = run_on(algo, graph, ScalaGraphConfig::with_pes(32));
    assert_eq!(sg.properties, golden.properties, "scalagraph {label}");
    let gd = GraphDyns::new(GraphDynsConfig::with_pes(32)).run(algo, graph);
    assert_eq!(gd.properties, golden.properties, "graphdyns {label}");
    let gpu = GunrockModel::v100().run(algo, graph);
    assert_eq!(gpu.properties, golden.properties, "gunrock {label}");
}

#[test]
fn bfs_exact_on_all_families() {
    for (name, g) in families(1) {
        check_exact(&Bfs::from_root(0), &g, name);
    }
}

#[test]
fn sssp_exact_on_weighted_families() {
    for (name, g) in families(2) {
        let mut list = EdgeList::new(g.num_vertices());
        for e in g.edges() {
            list.push(e);
        }
        list.randomize_weights(255, 7);
        let weighted = Csr::from_edge_list(&list);
        check_exact(&Sssp::from_root(0), &weighted, name);
    }
}

#[test]
fn cc_exact_on_symmetrized_families() {
    for (name, g) in families(3) {
        let mut list = EdgeList::new(g.num_vertices());
        for e in g.edges() {
            list.push(e);
        }
        list.symmetrize();
        let sym = Csr::from_edge_list(&list);
        check_exact(&ConnectedComponents::new(), &sym, name);
    }
}

#[test]
fn pagerank_close_on_all_families() {
    let algo = PageRank::new(4);
    for (name, g) in families(4) {
        let golden = ReferenceEngine::new().run(&algo, &g);
        let sg = run_on(&algo, &g, ScalaGraphConfig::with_pes(32));
        let gd = GraphDyns::new(GraphDynsConfig::with_pes(32)).run(&algo, &g);
        for (i, (&a, &b)) in sg.properties.iter().zip(&golden.properties).enumerate() {
            assert!(
                (a - b).abs() < 1e-4,
                "scalagraph {name} vertex {i}: {a} vs {b}"
            );
        }
        for (i, (&a, &b)) in gd.properties.iter().zip(&golden.properties).enumerate() {
            assert!(
                (a - b).abs() < 1e-4,
                "graphdyns {name} vertex {i}: {a} vs {b}"
            );
        }
        // The GPU model reuses the reference executor, so unlike the
        // cycle-accurate engines its ranks must match bit for bit.
        let gpu = GunrockModel::v100().run(&algo, &g);
        assert_eq!(gpu.properties, golden.properties, "gunrock {name}");
    }
}

#[test]
fn widest_path_exact_on_all_baselines() {
    use scalagraph_suite::algo::algorithms::WidestPath;
    for (name, g) in families(6) {
        let mut list = EdgeList::new(g.num_vertices());
        for e in g.edges() {
            list.push(e);
        }
        list.randomize_weights(255, 17);
        let weighted = Csr::from_edge_list(&list);
        check_exact(&WidestPath::from_root(0), &weighted, name);
    }
}

#[test]
fn dataset_standins_run_correctly_on_scalagraph() {
    for dataset in [Dataset::Pokec, Dataset::Rmat24] {
        let g = dataset.generate(16384, 5);
        let root = Dataset::pick_root(&g);
        let algo = Bfs::from_root(root);
        let golden = ReferenceEngine::new().run(&algo, &g);
        let sim = run_on(&algo, &g, ScalaGraphConfig::with_pes(64));
        assert_eq!(sim.properties, golden.properties, "{dataset}");
        assert_eq!(
            sim.stats.traversed_edges, golden.traversed_edges,
            "{dataset}"
        );
    }
}

#[test]
fn frontier_evolution_matches_reference() {
    let g = Csr::from_edges(300, &generators::power_law(300, 2500, 0.8, 11));
    let algo = Bfs::from_root(Dataset::pick_root(&g));
    let golden = ReferenceEngine::new().run(&algo, &g);
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.inter_phase_pipelining = false; // pipelining may legally converge faster
    let sim = run_on(&algo, &g, cfg);
    assert_eq!(sim.frontier_sizes, golden.frontier_sizes);
}

#[test]
fn disconnected_graph_all_systems() {
    // Two islands; BFS from island A must not touch island B.
    let mut list = EdgeList::new(60);
    for e in generators::binary_tree(30) {
        list.push(e);
    }
    for e in generators::binary_tree(30) {
        list.push(scalagraph_suite::graph::Edge::new(e.src + 30, e.dst + 30));
    }
    let g = Csr::from_edge_list(&list);
    check_exact(&Bfs::from_root(0), &g, "islands");
    let sg = run_on(&Bfs::from_root(0), &g, ScalaGraphConfig::with_pes(32));
    assert!(sg.properties[30..].iter().all(|&l| l == u32::MAX));
}

#[test]
fn widest_path_matches_reference_on_simulator() {
    use scalagraph_suite::algo::algorithms::WidestPath;
    let mut list = EdgeList::new(300);
    for e in generators::uniform(300, 2500, 19) {
        list.push(e);
    }
    list.randomize_weights(255, 21);
    let g = Csr::from_edge_list(&list);
    let algo = WidestPath::from_root(0);
    let golden = ReferenceEngine::new().run(&algo, &g);
    let sim = run_on(&algo, &g, ScalaGraphConfig::with_pes(32));
    assert_eq!(sim.properties, golden.properties);
    let sim512 = run_on(&algo, &g, ScalaGraphConfig::scalagraph_512());
    assert_eq!(sim512.properties, golden.properties);
}
