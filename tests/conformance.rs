//! Tier-1 conformance: every checked-in corpus scenario replays clean, the
//! fuzzer is deterministic, and the shrinker minimizes a synthetic
//! divergence down to a trivial graph.
//!
//! The corpus is the regression memory of the differential harness: every
//! file in `corpus/` is replayed here on every declared engine/mode
//! combination, and the files themselves are pinned to the canonical
//! serialization so a drive-by edit cannot silently de-canonicalize them.

use scalagraph_suite::conformance::{
    fuzz, run_scenario, shrink, signature, AlgoSpec, ConfigSpec, Expectation, Family, GraphSource,
    GraphSpec, ModeMatrix, Outcome, Scenario,
};

fn corpus_files() -> Vec<(String, String)> {
    let dir = format!("{}/corpus", env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .expect("corpus/ directory must exist")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .map(|p| p.to_string_lossy().into_owned())
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus must not be empty");
    files
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).expect("readable corpus file");
            (p, text)
        })
        .collect()
}

#[test]
fn corpus_scenarios_are_canonical_and_pass() {
    for (path, text) in corpus_files() {
        let scenario =
            Scenario::from_json_str(&text).unwrap_or_else(|e| panic!("{path} does not parse: {e}"));
        assert_eq!(
            scenario.to_json_string(),
            text,
            "{path} is not in canonical form — regenerate with \
             `cargo run -p scalagraph-conformance --example gen_corpus`"
        );
        let file_stem = path.rsplit('/').next().unwrap().trim_end_matches(".json");
        assert_eq!(
            scenario.name, file_stem,
            "{path}: name must match file stem"
        );
        let report = run_scenario(&scenario).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert!(report.passed(), "{path} diverged:\n{}", report.render());
    }
}

#[test]
fn corpus_replays_are_byte_identical() {
    // A mismatch report must be reproducible byte for byte, or a corpus
    // repro would be useless as a debugging artifact.
    for (path, text) in corpus_files() {
        let scenario = Scenario::from_json_str(&text).unwrap();
        let a = run_scenario(&scenario).unwrap_or_else(|e| panic!("{path}: {e}"));
        let b = run_scenario(&scenario).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert_eq!(a, b, "{path}: reports must be identical across replays");
        assert_eq!(a.render(), b.render());
    }
}

/// Regression (empty apply-work waves): a wave that consumes a non-empty
/// frontier but produces nothing to apply — BFS from a zero-out-degree
/// star leaf, or a path's trailing vertex — must be counted as an
/// iteration by every engine, pipelined or not.
#[test]
fn empty_apply_work_waves_count_identically_everywhere() {
    let cases = [
        (Family::Star { vertices: 64 }, 5u32, 1u64),
        (Family::Path { vertices: 12 }, 0, 12),
        (Family::Path { vertices: 3 }, 0, 3),
    ];
    for (family, root, want_iterations) in cases {
        for pipelining in [false, true] {
            let scenario = Scenario {
                name: format!("iteration-identity-{root}-{pipelining}"),
                graph: GraphSpec {
                    family,
                    symmetrize: false,
                    max_weight: 0,
                    weight_seed: 0,
                    source: GraphSource::Generate,
                },
                algo: AlgoSpec::Bfs { root },
                config: ConfigSpec {
                    inter_phase_pipelining: pipelining,
                    ..ConfigSpec::small()
                },
                fault_seed: 0,
                faults: Vec::new(),
                modes: ModeMatrix::full(),
                // Single-vertex waves leave pipelining nothing to legally
                // reorder, so the comparison can stay strict.
                strict_frontier: Some(true),
                expect: Expectation::Converge,
                synthetic_bug: false,
                mutations: None,
            };
            let report = run_scenario(&scenario).unwrap();
            assert!(
                report.passed(),
                "pipelining={pipelining}:\n{}",
                report.render()
            );
            for o in &report.observations {
                match &o.outcome {
                    Outcome::Converged(d) => assert_eq!(
                        d.iterations, want_iterations,
                        "{} reported wrong iteration count (pipelining={pipelining})",
                        o.engine
                    ),
                    Outcome::Errored(e) => panic!("{} errored: {e:?}", o.engine),
                }
            }
        }
    }
}

/// Satellite wedge pin: the corpus wedge scenario must blame the exact
/// faulted unit in its stall snapshot, identically with fast-forward on.
#[test]
fn wedge_corpus_snapshot_names_the_faulted_unit() {
    let (path, text) = corpus_files()
        .into_iter()
        .find(|(p, _)| p.ends_with("wedge-hbm-stall-watchdog.json"))
        .expect("wedge scenario must stay in the corpus");
    let scenario = Scenario::from_json_str(&text).unwrap();
    assert!(
        scenario.modes.fast_forward,
        "{path}: must exercise fast-forward"
    );
    let report = run_scenario(&scenario).unwrap();
    assert!(report.passed(), "{}", report.render());
    let errored: Vec<_> = report
        .observations
        .iter()
        .filter_map(|o| match &o.outcome {
            Outcome::Errored(e) => Some((o.engine, e)),
            Outcome::Converged(_) => None,
        })
        .collect();
    assert_eq!(
        errored.len(),
        4,
        "stepped, fast-forward, event-driven and recording"
    );
    for (engine, digest) in errored {
        assert_eq!(
            digest.suspect, "HBM pseudo-channel 0 of tile 0",
            "{engine} must blame the pinned channel"
        );
        assert!(digest.stalled_for >= 2_000, "{engine}: {digest:?}");
    }
}

/// Satellite wedge pin for the event-driven core: a mid-run HBM wedge must
/// trip the watchdog on the identical cycle with the identical stall count
/// in stepped, fast-forward, event-driven and recording execution — any
/// drift in the calendar's skip/step decisions moves the firing cycle.
#[test]
fn event_driven_corpus_wedge_fires_identically_across_modes() {
    let (path, text) = corpus_files()
        .into_iter()
        .find(|(p, _)| p.ends_with("wedge-event-driven-hbm-stall.json"))
        .expect("event-driven wedge scenario must stay in the corpus");
    let scenario = Scenario::from_json_str(&text).unwrap();
    assert!(
        scenario.modes.event_driven,
        "{path}: must exercise the event-driven mode"
    );
    let report = run_scenario(&scenario).unwrap();
    assert!(report.passed(), "{}", report.render());
    let errored: Vec<_> = report
        .observations
        .iter()
        .filter_map(|o| match &o.outcome {
            Outcome::Errored(e) => Some((o.engine, e)),
            Outcome::Converged(_) => None,
        })
        .collect();
    assert_eq!(
        errored.len(),
        4,
        "stepped, fast-forward, event-driven and recording"
    );
    let (_, first) = errored[0];
    for (engine, digest) in &errored {
        assert_eq!(digest.cycle, first.cycle, "{engine} fired on another cycle");
        assert_eq!(digest.stalled_for, first.stalled_for, "{engine}");
        assert_eq!(digest.suspect, first.suspect, "{engine}");
        assert!(digest.stalled_for >= 1_500, "{engine}: {digest:?}");
    }
}

#[test]
fn fuzz_campaigns_are_deterministic_and_clean() {
    let a = fuzz(25, 42);
    let b = fuzz(25, 42);
    assert_eq!(a.render(), b.render(), "same (budget, seed) must replay");
    assert_eq!(a.rejected, 0, "sampler must only produce valid scenarios");
    assert!(
        a.failures.is_empty(),
        "fuzzing found a real divergence:\n{}",
        a.render()
    );
    assert_eq!(a.passed, 25);
}

#[test]
fn shrinker_reduces_a_synthetic_bug_to_a_trivial_graph() {
    let scenario = Scenario {
        name: "synthetic-divergence".into(),
        graph: GraphSpec {
            family: Family::Rmat {
                vertices: 256,
                edges: 1024,
                seed: 5,
            },
            symmetrize: true,
            max_weight: 64,
            weight_seed: 1,
            source: GraphSource::Generate,
        },
        algo: AlgoSpec::Sssp { root: 200 },
        config: ConfigSpec {
            pes: 128,
            aggregation_registers: 4,
            ..ConfigSpec::small()
        },
        fault_seed: 0,
        faults: Vec::new(),
        modes: ModeMatrix::sim_only(),
        expect: Expectation::Converge,
        strict_frontier: None,
        synthetic_bug: true,
        mutations: None,
    };
    let report = run_scenario(&scenario).unwrap();
    assert!(!report.passed(), "the synthetic bug must surface");
    let sig = signature(&report).unwrap();
    assert_eq!(sig.field, "iterations");

    let out = shrink(&scenario, &report, 200);
    assert!(
        out.scenario.graph.family.vertices() <= 16,
        "shrinker stopped at {} vertices",
        out.scenario.graph.family.vertices()
    );
    assert_eq!(
        signature(&out.report),
        Some(sig),
        "minimization must preserve the divergence signature"
    );
    // The minimized scenario is corpus-ready: canonical JSON that replays
    // to the same failure.
    let text = out.scenario.to_json_string();
    let back = Scenario::from_json_str(&text).unwrap();
    assert_eq!(back, out.scenario);
    let replayed = run_scenario(&back).unwrap();
    assert_eq!(replayed, out.report);
}
