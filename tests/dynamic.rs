//! Tier-1 dynamic-graph acceptance: the incremental mutation path is held
//! bit-identical to independent from-scratch models at two levels.
//!
//! 1. **Structure** (proptest): arbitrary batch sequences against an
//!    independent shadow adjacency model maintained by this test. After
//!    every batch both [`DynamicCsr`] views — canonical and degree-aware
//!    laid-out — must equal a CSR rebuilt from scratch from the shadow
//!    (offsets, neighbor order, weights, and the Section IV-C lane
//!    permutation), including empty batches and delete-then-reinsert.
//! 2. **Results** (fuzz): `fuzz_dynamic` scenarios run the full dynamic
//!    oracle — incremental BFS/SSSP/delta-PageRank vs full recompute after
//!    every batch, on every declared engine/mode — and must all pass. A
//!    40-case pin runs in tier-1; the 200-case acceptance sweep is
//!    `#[ignore]`d for `--ignored` runs.

use proptest::prelude::*;
use scalagraph_suite::conformance::fuzz_dynamic;
use scalagraph_suite::graph::mutate::{DynamicCsr, MutationBatch};
use scalagraph_suite::graph::{relayout, Csr, Edge};

/// Concrete mutation op mirrored into both the [`MutationBatch`] under test
/// and the shadow model.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { src: u32, dst: u32, weight: u32 },
    Remove { src: u32, dst: u32 },
    AddVertex,
    Isolate { v: u32 },
}

/// Independent adjacency model: per-source `(dst, weight)` lists in
/// canonical order (surviving originals first, inserts appended in op
/// order). Deliberately reimplements the mutation semantics with none of
/// the incremental machinery.
struct Shadow {
    adj: Vec<Vec<(u32, u32)>>,
}

impl Shadow {
    fn from_csr(g: &Csr) -> Self {
        let adj = g
            .vertices()
            .map(|v| {
                g.edge_range(v)
                    .map(|i| (g.neighbor_at(i), g.weight_at(i)))
                    .collect()
            })
            .collect();
        Shadow { adj }
    }

    fn apply(&mut self, ops: &[Op]) {
        for &op in ops {
            match op {
                Op::Insert { src, dst, weight } => self.adj[src as usize].push((dst, weight)),
                Op::Remove { src, dst } => self.adj[src as usize].retain(|&(d, _)| d != dst),
                Op::AddVertex => self.adj.push(Vec::new()),
                Op::Isolate { v } => {
                    self.adj[v as usize].clear();
                    for list in &mut self.adj {
                        list.retain(|&(d, _)| d != v);
                    }
                }
            }
        }
    }

    /// From-scratch canonical CSR: offsets and neighbor arrays assembled
    /// directly from the lists, weighted iff any weight is nonzero.
    fn canonical(&self) -> Csr {
        let mut offsets = Vec::with_capacity(self.adj.len() + 1);
        let mut neighbors = Vec::new();
        let mut weights = Vec::new();
        offsets.push(0u64);
        for list in &self.adj {
            for &(d, w) in list {
                neighbors.push(d);
                weights.push(w);
            }
            offsets.push(neighbors.len() as u64);
        }
        let weights = weights.iter().any(|&w| w != 0).then_some(weights);
        Csr::from_raw_parts(offsets, neighbors, weights).expect("shadow CSR is well formed")
    }

    fn laidout(&self, lanes: usize) -> Csr {
        let mut g = self.canonical();
        relayout::degree_aware_relayout(&mut g, lanes, |d| (d as usize) % lanes);
        g
    }
}

fn batch_of(ops: &[Op]) -> MutationBatch {
    let mut batch = MutationBatch::new();
    for &op in ops {
        match op {
            Op::Insert { src, dst, weight } => batch.insert_edge(Edge::weighted(src, dst, weight)),
            Op::Remove { src, dst } => batch.remove_edge(src, dst),
            Op::AddVertex => batch.add_vertex(),
            Op::Isolate { v } => batch.isolate_vertex(v),
        };
    }
    batch
}

/// Concretizes abstract `(kind, a, b, w)` draws into in-range ops, tracking
/// the vertex count as `AddVertex` ops land mid-batch.
fn concretize(raw: &[(u8, u32, u32, u32)], n: &mut u32) -> Vec<Op> {
    let mut ops = Vec::with_capacity(raw.len());
    for &(kind, a, b, w) in raw {
        match kind % 4 {
            0 => ops.push(Op::Insert {
                src: a % *n,
                dst: b % *n,
                weight: w,
            }),
            1 => ops.push(Op::Remove {
                src: a % *n,
                dst: b % *n,
            }),
            2 => {
                ops.push(Op::AddVertex);
                *n += 1;
            }
            _ => ops.push(Op::Isolate { v: a % *n }),
        }
    }
    ops
}

fn assert_views_match(dynamic: &DynamicCsr, shadow: &Shadow, ctx: &str) {
    assert_eq!(
        dynamic.canonical(),
        &shadow.canonical(),
        "canonical view diverged from the shadow rebuild ({ctx})"
    );
    assert_eq!(
        dynamic.laidout(),
        &shadow.laidout(dynamic.lanes()),
        "laid-out view diverged from the shadow rebuild ({ctx})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary chained batches: after each one, both incremental views
    /// equal the shadow's from-scratch rebuild bit-for-bit.
    #[test]
    fn incremental_views_match_shadow_rebuild(
        v in 2usize..40,
        base in prop::collection::vec((0u32..40, 0u32..40, 0u32..16), 0..120),
        batches in prop::collection::vec(
            prop::collection::vec((0u8..4, 0u32..64, 0u32..64, 0u32..16), 0..10),
            1..5,
        ),
        lanes in 1usize..17,
    ) {
        let edges: Vec<Edge> = base
            .into_iter()
            .map(|(s, d, w)| Edge::weighted(s % v as u32, d % v as u32, w))
            .collect();
        let g = Csr::from_edges(v, &edges);
        let mut dynamic = DynamicCsr::with_lanes(g.clone(), lanes);
        let mut shadow = Shadow::from_csr(&g);
        let mut n = v as u32;
        for (k, raw) in batches.iter().enumerate() {
            let ops = concretize(raw, &mut n);
            dynamic.apply(&batch_of(&ops)).expect("in-range ops apply");
            shadow.apply(&ops);
            assert_views_match(&dynamic, &shadow, &format!("batch {k}: {ops:?}"));
        }
    }
}

#[test]
fn empty_batches_and_delete_then_reinsert_are_exact() {
    let base = vec![
        Edge::weighted(0, 1, 3),
        Edge::weighted(0, 2, 5),
        Edge::weighted(1, 2, 7),
        Edge::weighted(2, 0, 1),
        Edge::weighted(2, 0, 9), // parallel copy: removal kills both
    ];
    let g = Csr::from_edges(4, &base);
    let mut dynamic = DynamicCsr::with_lanes(g.clone(), 3);
    let mut shadow = Shadow::from_csr(&g);

    // An empty batch is a no-op on both views.
    dynamic.apply(&MutationBatch::new()).expect("empty batch");
    assert_views_match(&dynamic, &shadow, "empty batch");

    // Delete-then-reinsert inside one batch: the reinserted copy moves to
    // the insertion-order tail of the list, it does not resurrect in place.
    let ops = vec![
        Op::Remove { src: 2, dst: 0 },
        Op::Insert {
            src: 2,
            dst: 0,
            weight: 4,
        },
        Op::Insert {
            src: 2,
            dst: 3,
            weight: 2,
        },
    ];
    dynamic.apply(&batch_of(&ops)).expect("reinsert batch");
    shadow.apply(&ops);
    assert_views_match(&dynamic, &shadow, "delete-then-reinsert");
    assert_eq!(dynamic.canonical().neighbors(2), &[0, 3]);
    assert_eq!(
        dynamic.canonical().edge_weights(2).expect("weighted"),
        &[4, 2],
        "the surviving copy is the reinserted one, not either original"
    );
}

/// Tier-1 pin: 40 fuzzed dynamic scenarios through the full incremental vs
/// full-recompute differential oracle, deterministic and all passing.
#[test]
fn fuzz_dynamic_pin_passes_clean() {
    let report = fuzz_dynamic(40, 2024);
    assert_eq!(report.budget, 40);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.passed, 40, "failures: {:?}", report.failures);
    let again = fuzz_dynamic(40, 2024);
    assert_eq!(report.passed, again.passed);
    assert_eq!(
        report.failures.is_empty(),
        again.failures.is_empty(),
        "fuzz_dynamic must be a pure function of (budget, seed)"
    );
}

/// Acceptance sweep (ISSUE 10): 200 fuzzed dynamic scenarios. Run with
/// `cargo test --test dynamic -- --ignored`.
#[test]
#[ignore = "long acceptance sweep; tier-1 runs the 40-case pin"]
fn fuzz_dynamic_acceptance_sweep() {
    let report = fuzz_dynamic(200, 7);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.passed, 200, "failures: {:?}", report.failures);
}
