//! Robustness: structured errors, the progress watchdog, and the seeded
//! fault-injection subsystem.
//!
//! Three classes of guarantee are pinned down here:
//!
//! 1. With no fault plan attached, `try_run` is bit-identical to the
//!    legacy `run` path on every algorithm.
//! 2. A machine wedged by an injected fault (pinned HBM channel,
//!    zero-credit link) is diagnosed by the watchdog in bounded time with
//!    a non-empty stall snapshot — never a hang, never a panic.
//! 3. Corrupt inputs — graph files and update payloads — surface as typed
//!    errors.

use scalagraph_suite::algo::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
use scalagraph_suite::algo::{Algorithm, ReferenceEngine};
use scalagraph_suite::graph::{generators, io, Csr, EdgeList};
use scalagraph_suite::scalagraph::{
    run_on, try_run_on, Fault, FaultKind, FaultPlan, LinkDir, ScalaGraphConfig, SimError,
    StalledUnit,
};

fn test_graph(seed: u64) -> Csr {
    Csr::from_edges(400, &generators::uniform(400, 3000, seed))
}

fn assert_try_matches_run<A: Algorithm>(algo: &A, graph: &Csr)
where
    A::Prop: std::fmt::Debug + PartialEq,
{
    let cfg = ScalaGraphConfig::with_pes(32);
    let via_run = run_on(algo, graph, cfg.clone());
    let via_try = try_run_on(algo, graph, cfg).expect("fault-free run must succeed");
    assert_eq!(via_try.properties, via_run.properties);
    assert_eq!(via_try.frontier_sizes, via_run.frontier_sizes);
    assert_eq!(via_try.stats, via_run.stats);
}

#[test]
fn try_run_is_bit_identical_to_run_without_faults() {
    let g = test_graph(1);
    assert_try_matches_run(&Bfs::from_root(0), &g);
    assert_try_matches_run(&PageRank::new(3), &g);

    let mut list = EdgeList::new(g.num_vertices());
    for e in g.edges() {
        list.push(e);
    }
    list.randomize_weights(255, 7);
    assert_try_matches_run(&Sssp::from_root(0), &Csr::from_edge_list(&list));

    let mut sym = EdgeList::new(g.num_vertices());
    for e in g.edges() {
        sym.push(e);
    }
    sym.symmetrize();
    assert_try_matches_run(&ConnectedComponents::new(), &Csr::from_edge_list(&sym));
}

#[test]
fn try_run_still_matches_the_reference_engine() {
    let g = test_graph(2);
    let algo = Bfs::from_root(0);
    let golden = ReferenceEngine::new().run(&algo, &g);
    let sim = try_run_on(&algo, &g, ScalaGraphConfig::with_pes(32)).unwrap();
    assert_eq!(sim.properties, golden.properties);
}

#[test]
fn invalid_config_is_a_structured_error_not_a_panic() {
    let g = test_graph(3);
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.gu_queue_capacity = 0;
    let err = try_run_on(&Bfs::from_root(0), &g, cfg).unwrap_err();
    assert!(matches!(err, SimError::ConfigInvalid { .. }), "{err}");
    assert!(err.snapshot().is_none());
}

#[test]
fn permanently_pinned_hbm_channel_trips_the_watchdog() {
    let g = test_graph(4);
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.watchdog_stall_cycles = 2_000;
    cfg.fault_plan = Some(
        FaultPlan::seeded(11).with(
            Fault::new(FaultKind::HbmStall {
                tile: 0,
                channel: 0,
                cycles: u64::MAX,
            })
            .window(20, 21),
        ),
    );
    let err = try_run_on(&Bfs::from_root(0), &g, cfg).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::DeadlockDetected { .. } | SimError::WatchdogStall { .. }
        ),
        "{err}"
    );
    let snapshot = err.snapshot().expect("stall errors carry a snapshot");
    assert!(!snapshot.is_empty(), "snapshot must name the stuck state");
    assert!(snapshot.stalled_for >= 2_000);
    assert!(
        snapshot
            .tiles
            .iter()
            .any(|t| t.hbm_channels.iter().any(|c| c.stalled)),
        "the pinned channel must appear in the snapshot:\n{snapshot}"
    );
    assert!(
        matches!(
            snapshot.suspect,
            StalledUnit::HbmChannel { tile: 0, .. } | StalledUnit::Prefetcher { tile: 0 }
        ),
        "suspect should point at tile 0's memory path, got {}",
        snapshot.suspect
    );
}

#[test]
fn zero_credit_link_wedges_and_is_diagnosed_in_bounded_time() {
    let g = test_graph(5);
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.watchdog_stall_cycles = 2_000;
    // with_pes(32) is a single-column mesh and row-oriented mapping keeps
    // all update traffic inside the destination's tile: downing tile 0's
    // mid-tile south link (node 7 -> 8) cuts every update headed from its
    // upper to its lower rows.
    cfg.fault_plan = Some(FaultPlan::seeded(13).with(Fault::new(FaultKind::LinkDown {
        node: 7,
        dir: LinkDir::South,
    })));
    let err = try_run_on(&Bfs::from_root(0), &g, cfg).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::DeadlockDetected { .. } | SimError::WatchdogStall { .. }
        ),
        "{err}"
    );
    let snapshot = err.snapshot().expect("stall errors carry a snapshot");
    assert!(!snapshot.is_empty());
    assert!(!matches!(snapshot.suspect, StalledUnit::Unknown));
    // Bounded time: the watchdog fired, the safety cap did not.
    assert!(
        snapshot.cycle < 1_000_000,
        "diagnosed at cycle {}",
        snapshot.cycle
    );
}

#[test]
fn out_of_range_payload_corruption_is_unrecoverable() {
    let g = test_graph(6);
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.fault_plan = Some(
        FaultPlan::seeded(17)
            .with(Fault::new(FaultKind::CorruptPayload {
                node: 7,
                dir: LinkDir::South,
                one_in: 1,
                out_of_range: true,
            }))
            .with(Fault::new(FaultKind::CorruptPayload {
                node: 8,
                dir: LinkDir::North,
                one_in: 1,
                out_of_range: true,
            })),
    );
    let err = try_run_on(&Bfs::from_root(0), &g, cfg).unwrap_err();
    assert!(matches!(err, SimError::FaultUnrecoverable { .. }), "{err}");
    assert!(err.to_string().contains("vertex"), "{err}");
}

#[test]
fn in_range_corruption_completes_with_well_formed_results() {
    let g = test_graph(7);
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.fault_plan = Some(
        FaultPlan::seeded(19).with(Fault::new(FaultKind::CorruptPayload {
            node: 7,
            dir: LinkDir::South,
            one_in: 4,
            out_of_range: false,
        })),
    );
    // Silent data corruption: the run finishes and the output is shaped
    // correctly, even though the values may be wrong.
    let sim = try_run_on(&Bfs::from_root(0), &g, cfg).expect("in-range corruption must not wedge");
    assert_eq!(sim.properties.len(), g.num_vertices());
    assert!(sim.stats.updates_corrupted > 0);
}

#[test]
fn delayed_flits_still_converge_to_the_reference_answer() {
    let g = test_graph(8);
    let algo = Bfs::from_root(0);
    let golden = ReferenceEngine::new().run(&algo, &g);
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.fault_plan = Some(FaultPlan::seeded(23).with(Fault::new(FaultKind::LinkDelay {
        node: 7,
        dir: LinkDir::South,
        cycles: 7,
    })));
    let sim = try_run_on(&algo, &g, cfg).expect("a slow link must not wedge the machine");
    // Delay reorders but never loses updates; BFS levels are a min-fixpoint
    // so the final properties are unchanged.
    assert_eq!(sim.properties, golden.properties);
    assert!(sim.stats.flits_delayed > 0);
}

#[test]
fn dropped_flits_never_panic() {
    let g = test_graph(9);
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.watchdog_stall_cycles = 10_000;
    cfg.fault_plan = Some(
        FaultPlan::seeded(29).with(
            Fault::new(FaultKind::LinkDrop {
                node: 7,
                dir: LinkDir::South,
                one_in: 3,
            })
            .window(0, 400),
        ),
    );
    // Lost updates may leave vertices unreached or stall the frontier; both
    // a completed run and a structured stall report are acceptable — a
    // panic or a hang is not.
    match try_run_on(&Bfs::from_root(0), &g, cfg) {
        Ok(sim) => {
            assert_eq!(sim.properties.len(), g.num_vertices());
            assert!(sim.stats.flits_dropped > 0);
        }
        Err(e) => {
            assert!(e.snapshot().is_some(), "{e}");
        }
    }
}

/// Runs `cfg` with fast-forward off and on and asserts the outcomes are
/// bit-identical — same properties, frontier trace, and stats on success,
/// same error cycle and stall diagnosis on failure.
fn assert_fast_forward_identical(graph: &Csr, cfg: &ScalaGraphConfig) {
    let mut off = cfg.clone();
    off.fast_forward = false;
    let mut on = cfg.clone();
    on.fast_forward = true;
    let algo = Bfs::from_root(0);
    match (try_run_on(&algo, graph, off), try_run_on(&algo, graph, on)) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.properties, b.properties);
            assert_eq!(a.frontier_sizes, b.frontier_sizes);
            assert_eq!(a.stats, b.stats);
        }
        (Err(a), Err(b)) => {
            let (sa, sb) = (a.snapshot(), b.snapshot());
            assert_eq!(
                sa.map(|s| (s.cycle, s.stalled_for)),
                sb.map(|s| (s.cycle, s.stalled_for)),
                "off: {a}\non: {b}"
            );
        }
        (a, b) => panic!(
            "fast-forward changed the outcome: off={:?} on={:?}",
            a.map(|r| r.stats),
            b.map(|r| r.stats)
        ),
    }
}

#[test]
fn fast_forward_is_bit_identical_under_recoverable_faults() {
    let g = test_graph(8);
    // Slow link: delays stretch the idle windows fast-forward skips over.
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.fault_plan = Some(FaultPlan::seeded(23).with(Fault::new(FaultKind::LinkDelay {
        node: 7,
        dir: LinkDir::South,
        cycles: 7,
    })));
    assert_fast_forward_identical(&g, &cfg);

    // Transient HBM stalls: the injector's fire cycles must be hit exactly
    // even when the engine is skipping quiescent stretches.
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.fault_plan = Some(
        FaultPlan::seeded(37).with(
            Fault::new(FaultKind::HbmStall {
                tile: 0,
                channel: 1,
                cycles: 300,
            })
            .window(50, 2_000),
        ),
    );
    assert_fast_forward_identical(&g, &cfg);
}

#[test]
fn fast_forward_trips_the_watchdog_identically() {
    let g = test_graph(4);
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.watchdog_stall_cycles = 2_000;
    cfg.fault_plan = Some(
        FaultPlan::seeded(11).with(
            Fault::new(FaultKind::HbmStall {
                tile: 0,
                channel: 0,
                cycles: u64::MAX,
            })
            .window(20, 21),
        ),
    );
    assert_fast_forward_identical(&g, &cfg);
}

#[test]
fn corrupt_graph_files_error_instead_of_panicking() {
    let dir = std::env::temp_dir().join("scalagraph_robustness_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let tmp = |name: &str| dir.join(format!("{}_{}", std::process::id(), name));

    // Truncated edge list: a data line with a single field.
    let p = tmp("truncated.txt");
    std::fs::write(&p, "0 1\n1 2\n3\n").unwrap();
    assert!(io::read_edge_list(&p, None).is_err());
    std::fs::remove_file(&p).unwrap();

    // Endpoint outside the declared vertex count.
    let p = tmp("oob.txt");
    std::fs::write(&p, "0 1\n9 2\n").unwrap();
    assert!(io::read_edge_list(&p, Some(5)).is_err());
    std::fs::remove_file(&p).unwrap();

    // Binary CSR with a bad magic, then with a lying header.
    let p = tmp("magic.bin");
    std::fs::write(&p, b"WRONGMAGxxxxxxxxxxxxxxxx").unwrap();
    assert!(io::read_csr_binary(&p).is_err());
    std::fs::remove_file(&p).unwrap();

    let p = tmp("header.bin");
    let g = Csr::from_edges(16, &generators::uniform(16, 40, 31));
    io::write_csr_binary(&g, &p).unwrap();
    let mut bytes = std::fs::read(&p).unwrap();
    bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&p, &bytes).unwrap();
    assert!(io::read_csr_binary(&p).is_err());
    // Truncation of a well-formed file is also rejected.
    std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
    assert!(io::read_csr_binary(&p).is_err());
    std::fs::remove_file(&p).unwrap();
}
