//! Telemetry subsystem guarantees, pinned across the crate boundary:
//!
//! 1. Attaching a [`Recorder`] never perturbs the simulation — results and
//!    every performance counter are bit-identical to the null-collector
//!    path, with and without fault injection.
//! 2. The Chrome trace export is well-formed JSON with balanced begin/end
//!    span pairs on every track, so ui.perfetto.dev loads it.
//! 3. The CSV and heatmap exports are structurally sound, and the summary
//!    is consistent with the simulator's own counters.

use scalagraph_suite::algo::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
use scalagraph_suite::algo::Algorithm;
use scalagraph_suite::graph::{generators, Csr};
use scalagraph_suite::scalagraph::{
    Fault, FaultKind, FaultPlan, LinkDir, ScalaGraphConfig, SimResult, Simulator,
};
use scalagraph_suite::telemetry::{InstantKind, Recorder};
use std::collections::HashMap;

fn test_graph(seed: u64) -> Csr {
    Csr::from_edges(600, &generators::power_law(600, 5000, 0.8, seed))
}

fn run_both<A: Algorithm>(
    algo: &A,
    graph: &Csr,
    cfg: ScalaGraphConfig,
    window: u64,
) -> (SimResult<A::Prop>, SimResult<A::Prop>, Recorder) {
    let plain = Simulator::try_new(algo, graph, cfg.clone())
        .and_then(|mut s| s.try_run())
        .expect("plain run must succeed");
    let mut rec = Recorder::new(window);
    let traced = Simulator::try_new(algo, graph, cfg)
        .and_then(|mut s| s.try_run_with(&mut rec))
        .expect("recorded run must succeed");
    (plain, traced, rec)
}

#[test]
fn recorder_is_bit_identical_to_null_collector() {
    let g = test_graph(1);
    let cfg = ScalaGraphConfig::with_pes(32);
    macro_rules! check {
        ($algo:expr) => {
            let (plain, traced, _) = run_both(&$algo, &g, cfg.clone(), 128);
            assert_eq!(plain.properties, traced.properties);
            assert_eq!(plain.frontier_sizes, traced.frontier_sizes);
            assert_eq!(plain.stats, traced.stats);
        };
    }
    check!(Bfs::from_root(0));
    check!(Sssp::from_root(0));
    check!(ConnectedComponents::new());
    check!(PageRank::new(3));
}

#[test]
fn recorder_is_bit_identical_under_fault_injection_and_records_instants() {
    let g = test_graph(2);
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.fault_plan = Some(
        FaultPlan::seeded(31)
            .with(
                Fault::new(FaultKind::HbmStall {
                    tile: 0,
                    channel: 1,
                    cycles: 40,
                })
                .window(10, 11),
            )
            .with(
                Fault::new(FaultKind::LinkDrop {
                    node: 3,
                    dir: LinkDir::South,
                    one_in: 5,
                })
                .window(0, 300),
            ),
    );
    let (plain, traced, rec) = run_both(&Bfs::from_root(0), &g, cfg, 64);
    assert_eq!(plain.properties, traced.properties);
    assert_eq!(plain.stats, traced.stats);
    let stalls = rec
        .events()
        .iter()
        .filter(|(_, k)| matches!(k, InstantKind::HbmStallInjected { .. }))
        .count() as u64;
    let drops = rec
        .events()
        .iter()
        .filter(|(_, k)| matches!(k, InstantKind::FlitDropped { .. }))
        .count() as u64;
    assert_eq!(stalls, plain.stats.hbm_stalls_injected);
    assert_eq!(drops, plain.stats.flits_dropped);
}

// ---- a minimal JSON syntax checker (no external crates) ----------------

struct Json<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Json<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> u8 {
        self.ws();
        self.b.get(self.i).copied().unwrap_or(0)
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            b'{' => {
                self.eat(b'{')?;
                if self.peek() != b'}' {
                    loop {
                        self.string()?;
                        self.eat(b':')?;
                        self.value()?;
                        if self.peek() != b',' {
                            break;
                        }
                        self.eat(b',')?;
                    }
                }
                self.eat(b'}')
            }
            b'[' => {
                self.eat(b'[')?;
                if self.peek() != b']' {
                    loop {
                        self.value()?;
                        if self.peek() != b',' {
                            break;
                        }
                        self.eat(b',')?;
                    }
                }
                self.eat(b']')
            }
            b'"' => self.string(),
            b't' | b'f' | b'n' => {
                while self.i < self.b.len() && self.b[self.i].is_ascii_alphabetic() {
                    self.i += 1;
                }
                Ok(())
            }
            c if c == b'-' || c.is_ascii_digit() => {
                while self.i < self.b.len()
                    && matches!(
                        self.b[self.i],
                        b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
                    )
                {
                    self.i += 1;
                }
                Ok(())
            }
            c => Err(format!("unexpected byte `{}` at {}", c as char, self.i)),
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => self.i += 2,
                _ => self.i += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn check(bytes: &'a [u8]) -> Result<(), String> {
        let mut p = Json { b: bytes, i: 0 };
        p.value()?;
        p.ws();
        if p.i == p.b.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", p.i))
        }
    }
}

#[test]
fn chrome_trace_is_valid_json_with_balanced_spans() {
    let g = test_graph(3);
    let (_, _, rec) = run_both(&PageRank::new(3), &g, ScalaGraphConfig::with_pes(32), 128);
    let mut buf = Vec::new();
    rec.write_chrome_trace(&mut buf).expect("in-memory write");
    let text = String::from_utf8(buf).expect("trace must be UTF-8");
    Json::check(text.as_bytes()).expect("trace must be valid JSON");
    assert!(text.contains("\"traceEvents\""));
    assert!(text.contains("\"displayTimeUnit\""));

    // Every begin event must have a matching end on the same track, in
    // order — Perfetto rejects traces that violate this.
    let mut depth: HashMap<&str, i64> = HashMap::new();
    let mut begins = 0;
    for line in text.lines() {
        let ph = if line.contains("\"ph\": \"B\"") {
            begins += 1;
            1
        } else if line.contains("\"ph\": \"E\"") {
            -1
        } else {
            continue;
        };
        let tid = line
            .split("\"tid\": ")
            .nth(1)
            .and_then(|s| s.split(&[',', '}'][..]).next())
            .expect("span events carry a tid");
        let d = depth.entry(tid).or_insert(0);
        *d += ph;
        assert!(*d >= 0, "end before begin on track {tid}");
    }
    assert!(begins > 0, "trace must contain span events");
    assert!(
        depth.values().all(|&d| d == 0),
        "unbalanced spans: {depth:?}"
    );
}

#[test]
fn csv_and_heatmap_exports_are_well_formed() {
    let g = test_graph(4);
    let (_, _, rec) = run_both(&Bfs::from_root(0), &g, ScalaGraphConfig::with_pes(32), 128);

    let mut csv = Vec::new();
    rec.write_windows_csv(&mut csv).expect("in-memory write");
    let csv = String::from_utf8(csv).expect("CSV must be UTF-8");
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("kind,window,subject,metric,value"));
    let mut rows = 0;
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 5, "malformed row: {line}");
        assert!(
            matches!(fields[0], "tile" | "hbm" | "link"),
            "unknown kind in: {line}"
        );
        fields[1].parse::<u64>().expect("window must be numeric");
        fields[4].parse::<u64>().expect("value must be numeric");
        rows += 1;
    }
    assert!(rows > 0, "CSV must contain data rows");

    let mut heat = Vec::new();
    rec.write_link_heatmap(&mut heat).expect("in-memory write");
    let heat = String::from_utf8(heat).expect("heatmap must be UTF-8");
    Json::check(heat.as_bytes()).expect("heatmap must be valid JSON");
    for key in [
        "\"window_cycles\"",
        "\"cols\"",
        "\"rows\"",
        "\"links\"",
        "\"utilization\"",
    ] {
        assert!(heat.contains(key), "heatmap missing {key}");
    }
}

#[test]
fn wedged_run_still_exports_a_balanced_trace_with_the_watchdog_event() {
    let g = test_graph(6);
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.watchdog_stall_cycles = 1_500;
    cfg.fault_plan = Some(
        FaultPlan::seeded(37).with(
            Fault::new(FaultKind::HbmStall {
                tile: 0,
                channel: 0,
                cycles: u64::MAX,
            })
            .window(20, 21),
        ),
    );
    let mut rec = Recorder::new(128);
    let err = Simulator::try_new(&Bfs::from_root(0), &g, cfg)
        .and_then(|mut s| s.try_run_with(&mut rec))
        .expect_err("pinned channel must wedge the run");
    assert!(err.snapshot().is_some());
    assert!(
        rec.events()
            .iter()
            .any(|(_, k)| matches!(k, InstantKind::WatchdogStall { .. })),
        "the watchdog firing must appear on the event track"
    );
    let mut buf = Vec::new();
    rec.write_chrome_trace(&mut buf).expect("in-memory write");
    let text = String::from_utf8(buf).expect("trace must be UTF-8");
    Json::check(text.as_bytes()).expect("trace of a failed run must still be valid JSON");
    let begins = text.matches("\"ph\": \"B\"").count();
    let ends = text.matches("\"ph\": \"E\"").count();
    assert!(begins > 0);
    assert_eq!(begins, ends, "error-path flush must close open spans");
}

#[test]
fn fast_forward_with_a_recorder_attached_is_bit_identical() {
    let g = test_graph(7);
    // A latency-heavy serial configuration: long quiescent stretches, so
    // fast-forward actually engages and must still stop on every window
    // boundary the recorder samples.
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.inter_phase_pipelining = false;
    for window in [64, 1000] {
        let mut off = cfg.clone();
        off.fast_forward = false;
        let mut on = cfg.clone();
        on.fast_forward = true;
        let (plain_off, traced_off, rec_off) = run_both(&Bfs::from_root(0), &g, off, window);
        let (plain_on, traced_on, rec_on) = run_both(&Bfs::from_root(0), &g, on, window);
        assert_eq!(plain_off.stats, plain_on.stats, "window={window}");
        assert_eq!(traced_off.properties, traced_on.properties);
        assert_eq!(traced_off.frontier_sizes, traced_on.frontier_sizes);
        assert_eq!(traced_off.stats, traced_on.stats);
        // The sampled timelines must agree window for window, not just in
        // aggregate: fast-forward may never jump across a sample boundary.
        let (a, b) = (rec_off.summary(), rec_on.summary());
        assert_eq!(a.windows, b.windows, "window={window}");
        assert_eq!(a.run_cycles, b.run_cycles);
        assert_eq!(a.total_link_traversals, b.total_link_traversals);
        let mut csv_off = Vec::new();
        let mut csv_on = Vec::new();
        rec_off.write_windows_csv(&mut csv_off).expect("write");
        rec_on.write_windows_csv(&mut csv_on).expect("write");
        assert_eq!(csv_off, csv_on, "per-window CSV diverged (window={window})");
    }
}

#[test]
fn summary_is_consistent_with_simulator_counters() {
    let g = test_graph(5);
    let (plain, _, rec) = run_both(&PageRank::new(3), &g, ScalaGraphConfig::with_pes(32), 200);
    let s = rec.summary();
    assert_eq!(s.run_cycles, plain.stats.cycles);
    assert_eq!(s.window_cycles, 200);
    assert_eq!(s.total_link_traversals, plain.stats.noc_hops);
    assert_eq!(s.offchip_bytes, plain.stats.offchip_bytes());
    assert!(s.windows >= s.run_cycles / 200);
    assert!(s.routing_latency_p50 <= s.routing_latency_p95);
    assert!(s.routing_latency_p95 <= s.routing_latency_max);
    assert!(s.scatter_only_cycles + s.apply_only_cycles + s.overlap_cycles <= s.run_cycles);
    let peak = s.peak_link.expect("a PageRank run must exercise links");
    assert!(peak.traversals > 0);
    assert!(s.peak_link_utilization > 0.0);
}
