//! Integration tests of the packed-CSR container (`graph::packed`):
//! property-based round-trips through the compressed format, and corruption
//! handling — every malformed container must come back as a typed
//! [`GraphError`], never a panic, because packed files arrive from disk and
//! the network, not from this process.

use proptest::prelude::*;
use scalagraph_suite::graph::error::GraphError;
use scalagraph_suite::graph::{packed, Csr, Edge, PackedCsr};

/// Random graph, optionally weighted, with duplicate edges and self-loops
/// allowed — everything `Csr::from_edges` accepts must round-trip.
fn arb_graph(max_v: usize, max_e: usize) -> impl Strategy<Value = Csr> {
    (2..max_v, any::<bool>()).prop_flat_map(move |(v, weighted)| {
        prop::collection::vec((0..v as u32, 0..v as u32, 0u32..1024), 0..max_e).prop_map(
            move |triples| {
                let edges: Vec<Edge> = triples
                    .into_iter()
                    .map(|(s, d, w)| {
                        if weighted {
                            Edge::weighted(s, d, w)
                        } else {
                            Edge::new(s, d)
                        }
                    })
                    .collect();
                Csr::from_edges(v, &edges)
            },
        )
    })
}

/// Mirrors the container's trailer checksum (word-wise FNV-1a over the
/// body) so corruption tests can damage the payload and re-seal the file —
/// exactly what the checksum cannot catch and the structural walk must.
fn reseal(bytes: &mut [u8]) {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const HEADER_LEN: usize = 56;
    let body = &bytes[HEADER_LEN..];
    let mut h = OFFSET;
    let mut i = 0;
    while i < body.len() {
        let take = (body.len() - i).min(8);
        let mut w = [0u8; 8];
        w[..take].copy_from_slice(&body[i..i + take]);
        h = (h ^ u64::from_le_bytes(w)).wrapping_mul(PRIME);
        i += take;
    }
    let sum = (h ^ body.len() as u64).wrapping_mul(PRIME);
    bytes[48..56].copy_from_slice(&sum.to_le_bytes());
}

fn sample_container() -> Vec<u8> {
    let edges: Vec<Edge> = (0u32..64)
        .flat_map(|s| [(s, (s * 7 + 1) % 64), (s, (s * 13 + 5) % 64)])
        .map(|(s, d)| Edge::weighted(s, d, s + d + 1))
        .collect();
    packed::pack_to_vec(&Csr::from_edges(64, &edges), 16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The packed container reproduces the CSR bit-for-bit through every
    /// read accessor, across block sizes small enough to force many
    /// blocks.
    #[test]
    fn packed_roundtrip_matches_csr(g in arb_graph(60, 400), block in 1u32..48) {
        let p = PackedCsr::from_bytes(packed::pack_to_vec(&g, block))
            .expect("freshly packed container must open");
        prop_assert_eq!(p.num_vertices(), g.num_vertices());
        prop_assert_eq!(p.num_edges(), g.num_edges());
        prop_assert_eq!(p.is_weighted(), g.is_weighted());
        for v in g.vertices() {
            prop_assert_eq!(p.out_degree(v), g.out_degree(v));
            prop_assert_eq!(p.edge_range(v), g.edge_range(v));
            prop_assert_eq!(&*p.neighbors(v), g.neighbors(v));
            if g.is_weighted() {
                let pw = p.edge_weights(v).expect("weighted container has weights");
                let gw = g.edge_weights(v).expect("weighted csr has weights");
                prop_assert_eq!(&*pw, gw);
            }
        }
        prop_assert_eq!(p.to_csr().expect("container round-trips"), g);
    }

    /// Truncation at *any* byte boundary is rejected with a typed error.
    #[test]
    fn truncation_never_panics(g in arb_graph(24, 120), block in 1u32..16) {
        let bytes = packed::pack_to_vec(&g, block);
        for len in 0..bytes.len() {
            let err = PackedCsr::from_bytes(bytes[..len].to_vec())
                .err()
                .expect("truncated container must not open");
            prop_assert!(matches!(
                err,
                GraphError::PackedFormat { .. } | GraphError::PackedChecksum { .. }
            ));
        }
    }
}

/// A single damaged bit anywhere in the body fails checksum verification
/// (structural checks may also fire first for index bytes — either way the
/// error is typed).
#[test]
fn bit_rot_is_detected() {
    let bytes = sample_container();
    assert!(PackedCsr::from_bytes(bytes.clone()).is_ok());
    for pos in (56..bytes.len()).step_by(29) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        let err = PackedCsr::from_bytes(bad)
            .err()
            .unwrap_or_else(|| panic!("flip at byte {pos} must be detected"));
        assert!(
            matches!(
                err,
                GraphError::PackedFormat { .. } | GraphError::PackedChecksum { .. }
            ),
            "flip at byte {pos}: unexpected error {err:?}"
        );
    }
}

/// Damaging the payload *and* re-sealing the checksum forces the
/// structural walk to catch the damage: every single-byte corruption is
/// either still a well-formed container or a typed error — never a panic,
/// and any neighbor pushed out of range is reported as such.
#[test]
fn resealed_corruption_yields_typed_errors() {
    let bytes = sample_container();
    let mut saw_out_of_range = false;
    let mut saw_rejection = false;
    for pos in 56..bytes.len() {
        for val in [bytes[pos] ^ 0xff, 0xff, 0x07] {
            let mut bad = bytes.clone();
            bad[pos] = val;
            reseal(&mut bad);
            match PackedCsr::from_bytes(bad) {
                Ok(p) => {
                    // Still structurally valid: every accessor must keep
                    // working (the open-time walk certifies decode).
                    for v in 0..p.num_vertices() as u32 {
                        let _ = p.neighbors(v);
                    }
                }
                Err(GraphError::VertexOutOfRange { num_vertices, .. }) => {
                    saw_out_of_range = true;
                    assert_eq!(num_vertices, 64);
                }
                Err(
                    GraphError::PackedFormat { .. }
                    | GraphError::PackedChecksum { .. }
                    | GraphError::MalformedOffsets { .. },
                ) => saw_rejection = true,
                Err(other) => panic!("corruption at byte {pos}: unexpected error {other:?}"),
            }
        }
    }
    assert!(
        saw_out_of_range,
        "no corruption produced an out-of-range id"
    );
    assert!(
        saw_rejection,
        "no corruption produced a structural rejection"
    );
}

#[test]
fn file_open_round_trips_and_rejects_damage() {
    let edges: Vec<Edge> = (0u32..100).map(|s| Edge::new(s, (s + 1) % 100)).collect();
    let g = Csr::from_edges(100, &edges);
    let dir = std::env::temp_dir();
    let path = dir.join(format!("scalagraph-it-packed-{}.sgpk", std::process::id()));

    let written = packed::write_packed(&g, &path, 32).expect("write container");
    let p = PackedCsr::open(&path).expect("open container");
    assert_eq!(written, std::fs::metadata(&path).expect("stat").len());
    assert_eq!(p.to_csr().expect("round-trip"), g);
    drop(p);

    // Truncate the file on disk: the mmap-backed open must reject it.
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
    let err = PackedCsr::open(&path)
        .err()
        .expect("truncated file must not open");
    assert!(matches!(
        err,
        GraphError::PackedFormat { .. } | GraphError::PackedChecksum { .. }
    ));
    std::fs::remove_file(&path).expect("cleanup");

    let missing = PackedCsr::open(dir.join("scalagraph-it-packed-missing.sgpk"));
    assert!(matches!(missing, Err(GraphError::Io { .. })));
}
