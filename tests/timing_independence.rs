//! Timing-independence: a correct accelerator produces the same *results*
//! no matter how the memory system's latencies wobble — only the cycle
//! count may move. This is the property that separates a simulator bug
//! (e.g. an update dropped under a rare queue state) from a modelling
//! choice, so it is tested across algorithms and jitter magnitudes.

use scalagraph_suite::algo::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
use scalagraph_suite::algo::ReferenceEngine;
use scalagraph_suite::graph::{generators, Csr, EdgeList};
use scalagraph_suite::mem::HbmConfig;
use scalagraph_suite::scalagraph::{run_on, MemoryPreset, ScalaGraphConfig};

fn jittered_config(jitter: u32) -> ScalaGraphConfig {
    let mut cfg = ScalaGraphConfig::with_pes(64);
    let clock_hz = cfg.effective_clock_mhz() * 1e6;
    cfg.memory = MemoryPreset::Custom(HbmConfig::u280_stack(clock_hz).with_jitter(jitter));
    cfg
}

#[test]
fn bfs_results_are_invariant_under_memory_jitter() {
    let g = Csr::from_edges(600, &generators::power_law(600, 6000, 0.85, 5));
    let algo = Bfs::from_root(0);
    let golden = ReferenceEngine::new().run(&algo, &g);
    let mut cycle_counts = Vec::new();
    for jitter in [0u32, 3, 17, 64] {
        let run = run_on(&algo, &g, jittered_config(jitter));
        assert_eq!(run.properties, golden.properties, "jitter {jitter}");
        cycle_counts.push(run.stats.cycles);
    }
    // Jitter must actually perturb the timing, or the test proves nothing.
    assert!(
        cycle_counts.windows(2).any(|w| w[0] != w[1]),
        "jitter never changed the cycle count: {cycle_counts:?}"
    );
}

#[test]
fn sssp_and_cc_results_are_invariant_under_memory_jitter() {
    let mut list = EdgeList::new(400);
    for e in generators::uniform(400, 3500, 7) {
        list.push(e);
    }
    list.randomize_weights(255, 9);
    let weighted = Csr::from_edge_list(&list);
    let sssp = Sssp::from_root(0);
    let golden = ReferenceEngine::new().run(&sssp, &weighted);
    for jitter in [0u32, 11, 47] {
        let run = run_on(&sssp, &weighted, jittered_config(jitter));
        assert_eq!(run.properties, golden.properties, "sssp jitter {jitter}");
    }

    let mut sym = EdgeList::new(400);
    for e in generators::uniform(400, 2000, 13) {
        sym.push(e);
    }
    sym.symmetrize();
    let g = Csr::from_edge_list(&sym);
    let cc = ConnectedComponents::new();
    let golden = ReferenceEngine::new().run(&cc, &g);
    for jitter in [0u32, 11, 47] {
        let run = run_on(&cc, &g, jittered_config(jitter));
        assert_eq!(run.properties, golden.properties, "cc jitter {jitter}");
    }
}

#[test]
fn pagerank_is_jitter_invariant_within_float_reassociation() {
    // Floating-point sums re-associate under different arrival orders, so
    // PageRank gets a tolerance instead of equality.
    let g = Csr::from_edges(300, &generators::power_law(300, 3000, 0.8, 17));
    let algo = PageRank::new(4);
    let golden = ReferenceEngine::new().run(&algo, &g);
    for jitter in [0u32, 9, 33] {
        let run = run_on(&algo, &g, jittered_config(jitter));
        for (i, (&a, &b)) in run.properties.iter().zip(&golden.properties).enumerate() {
            assert!(
                (a - b).abs() < 1e-4,
                "jitter {jitter} vertex {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn pipelined_runs_are_also_jitter_invariant() {
    let g = Csr::from_edges(500, &generators::power_law(500, 5000, 0.9, 21));
    let algo = Bfs::from_root(0);
    let golden = ReferenceEngine::new().run(&algo, &g);
    for jitter in [0u32, 25] {
        let mut cfg = jittered_config(jitter);
        cfg.inter_phase_pipelining = true;
        let run = run_on(&algo, &g, cfg);
        assert_eq!(run.properties, golden.properties, "jitter {jitter}");
        assert!(run.stats.inter_phase_used);
    }
}

#[test]
fn sliced_runs_are_also_jitter_invariant() {
    let g = Csr::from_edges(500, &generators::uniform(500, 4000, 23));
    let algo = Bfs::from_root(0);
    let golden = ReferenceEngine::new().run(&algo, &g);
    for jitter in [0u32, 19] {
        let mut cfg = jittered_config(jitter);
        cfg.spd_capacity_vertices = 97; // forces ~6 slices
        let run = run_on(&algo, &g, cfg);
        assert_eq!(run.properties, golden.properties, "jitter {jitter}");
        assert!(run.stats.slices > 1);
    }
}
