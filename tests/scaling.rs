//! Scalability behaviour across the stack: PE-count sweeps, frequency
//! coupling, and memory-bandwidth limits — the system-level claims behind
//! Figures 4, 14, and 21 and Table IV.

use scalagraph_suite::algo::algorithms::PageRank;
use scalagraph_suite::baselines::{GraphDyns, GraphDynsConfig};
use scalagraph_suite::graph::{generators, Csr, Dataset};
use scalagraph_suite::hwmodel::{max_frequency_mhz, InterconnectKind};
use scalagraph_suite::scalagraph::{run_on, MemoryPreset, ScalaGraphConfig};

fn big_graph() -> Csr {
    Dataset::Orkut.generate(2048, 42)
}

#[test]
fn scalagraph_cycles_shrink_with_more_pes() {
    let g = big_graph();
    let algo = PageRank::new(2);
    let mut last = u64::MAX;
    for pes in [32usize, 64, 128, 256, 512] {
        let m = run_on(&algo, &g, ScalaGraphConfig::with_pes(pes));
        assert!(
            m.stats.cycles < last,
            "{pes} PEs did not reduce cycles: {} !< {last}",
            m.stats.cycles
        );
        last = m.stats.cycles;
    }
}

#[test]
fn scalagraph_32_to_512_is_substantially_superlinear_in_gteps() {
    // Near-linear scaling (Figure 21): 16x PEs should buy well over 4x.
    let g = big_graph();
    let algo = PageRank::new(2);
    let small = run_on(&algo, &g, ScalaGraphConfig::with_pes(32));
    let large = run_on(&algo, &g, ScalaGraphConfig::with_pes(512));
    let speedup = small.stats.cycles as f64 / large.stats.cycles as f64;
    assert!(speedup > 4.0, "512/32 PE speedup only {speedup:.2}x");
}

#[test]
fn gteps_accounts_for_frequency_differences() {
    // GraphDynS at 128 PEs needs fewer cycles per edge than its GTEPS
    // suggests, because it runs at 100 MHz: check time = cycles / clock.
    let g = big_graph();
    let algo = PageRank::new(1);
    let cfg = GraphDynsConfig::graphdyns_128();
    let clock = cfg.effective_clock_mhz();
    assert_eq!(clock, 100.0);
    let m = GraphDyns::new(cfg).run(&algo, &g);
    let secs = m.stats.seconds(clock);
    assert!((secs - m.stats.cycles as f64 / 100.0e6).abs() < 1e-12);
}

#[test]
fn frequency_model_couples_into_config() {
    // ScalaGraph's effective clock is min(250, mesh fmax) at any size.
    for pes in [32usize, 512, 1024, 4096] {
        let cfg = ScalaGraphConfig::with_pes(pes);
        let mesh = max_frequency_mhz(InterconnectKind::Mesh, pes)
            .frequency_mhz()
            .unwrap_or(f64::INFINITY);
        assert!(cfg.effective_clock_mhz() <= mesh.min(250.0) + 1e-9);
    }
}

#[test]
fn unlimited_bandwidth_only_helps() {
    let g = big_graph();
    let algo = PageRank::new(2);
    for pes in [128usize, 512] {
        let limited = run_on(&algo, &g, ScalaGraphConfig::with_pes(pes));
        let mut cfg = ScalaGraphConfig::with_pes(pes);
        cfg.memory = MemoryPreset::Unlimited;
        let unlimited = run_on(&algo, &g, cfg);
        // Within noise: infinite bandwidth makes arrivals burstier, which
        // can shift queueing patterns by a percent or two even though the
        // memory itself is never the slower part.
        assert!(
            unlimited.stats.cycles as f64 <= limited.stats.cycles as f64 * 1.05,
            "{pes} PEs: unlimited {} vs limited {}",
            unlimited.stats.cycles,
            limited.stats.cycles
        );
        for (a, b) in unlimited.properties.iter().zip(&limited.properties) {
            assert!((a - b).abs() < 1e-4, "memory model changed results");
        }
    }
}

#[test]
fn graphdyns_512_beats_graphdyns_128_but_sublinearly() {
    let g = big_graph();
    let algo = PageRank::new(2);
    let c128 = GraphDynsConfig::graphdyns_128();
    let c512 = GraphDynsConfig::graphdyns_512();
    let m128 = GraphDyns::new(c128).run(&algo, &g);
    let m512 = GraphDyns::new(c512).run(&algo, &g);
    let speedup = m128.stats.cycles as f64 / m512.stats.cycles as f64;
    assert!(
        speedup > 1.2 && speedup < 4.0,
        "inter-tile traffic must make 4x PEs sublinear: {speedup:.2}x"
    );
}

#[test]
fn denser_graphs_use_pes_better() {
    // PE utilization rises with average degree (more edges per dispatched
    // vertex), the effect behind Figure 19(a)'s ordering.
    let algo = PageRank::new(2);
    let sparse = Csr::from_edges(4000, &generators::uniform(4000, 12_000, 3));
    let dense = Csr::from_edges(4000, &generators::uniform(4000, 160_000, 3));
    let cfg = ScalaGraphConfig::with_pes(128);
    let a = run_on(&algo, &sparse, cfg.clone());
    let b = run_on(&algo, &dense, cfg);
    assert!(
        b.stats.pe_utilization() > a.stats.pe_utilization(),
        "dense {:.2} !> sparse {:.2}",
        b.stats.pe_utilization(),
        a.stats.pe_utilization()
    );
}

#[test]
fn route_failed_configs_are_modelled_not_panicking() {
    // The crossbar cannot build at 256 PEs; the model reports that rather
    // than producing a number.
    assert!(!max_frequency_mhz(InterconnectKind::Crossbar, 256).is_routed());
    // The GraphDynS config falls back to a pessimistic clock if forced.
    let cfg = GraphDynsConfig {
        pes: 256,
        pes_per_tile: 256,
        ..GraphDynsConfig::with_pes(256)
    };
    assert_eq!(cfg.effective_clock_mhz(), 100.0);
}
