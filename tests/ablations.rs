//! Directional tests for the paper's four co-designs: each mechanism must
//! (a) preserve algorithm results and (b) move the metric the paper says
//! it moves.

use scalagraph_suite::algo::algorithms::{Bfs, ConnectedComponents, PageRank};
use scalagraph_suite::algo::ReferenceEngine;
use scalagraph_suite::graph::{generators, Csr, Dataset, EdgeList};
use scalagraph_suite::scalagraph::{run_on, Mapping, ScalaGraphConfig};

fn pagerank_graph() -> Csr {
    Csr::from_edges(800, &generators::power_law(800, 12_000, 0.8, 3))
}

#[test]
fn rom_beats_som_on_noc_traffic_and_som_beats_nothing() {
    let g = pagerank_graph();
    let algo = PageRank::new(2);
    let mut hops = Vec::new();
    for mapping in [Mapping::SourceOriented, Mapping::RowOriented] {
        let mut cfg = ScalaGraphConfig::with_pes(64);
        cfg.mapping = mapping;
        hops.push(run_on(&algo, &g, cfg).stats.noc_hops);
    }
    let (som, rom) = (hops[0], hops[1]);
    assert!(
        (rom as f64) < 0.8 * som as f64,
        "ROM must cut traffic substantially: SOM {som}, ROM {rom}"
    );
}

#[test]
fn dom_has_no_scatter_traffic_but_pays_in_apply() {
    let g = pagerank_graph();
    let algo = PageRank::new(2);
    let mut cfg = ScalaGraphConfig::with_pes(64);
    cfg.mapping = Mapping::DestinationOriented;
    let dom = run_on(&algo, &g, cfg);
    // All DOM hops come from replica broadcasts: a multiple of (K-1).
    assert_eq!(dom.stats.noc_hops % 63, 0);
    assert_eq!(dom.stats.noc_hops / 63, dom.stats.activations);
}

#[test]
fn aggregation_register_sweep_is_monotone_in_traffic() {
    let g = pagerank_graph();
    let algo = PageRank::new(2);
    let mut last = u64::MAX;
    for regs in [0usize, 4, 16] {
        let mut cfg = ScalaGraphConfig::with_pes(64);
        cfg.aggregation_registers = regs;
        let m = run_on(&algo, &g, cfg);
        // Near-monotone: merge opportunities depend on exact timing, so a
        // 1% tolerance covers scheduling noise between register counts.
        assert!(
            m.stats.noc_hops as f64 <= last as f64 * 1.01,
            "{regs} registers increased traffic: {} > {last}",
            m.stats.noc_hops
        );
        last = m.stats.noc_hops.min(last);
    }
}

#[test]
fn aggregation_preserves_pagerank_mass() {
    let g = pagerank_graph();
    let algo = PageRank::new(3);
    for regs in [0usize, 16] {
        let mut cfg = ScalaGraphConfig::with_pes(64);
        cfg.aggregation_registers = regs;
        let m = run_on(&algo, &g, cfg);
        let total: f32 = m.properties.iter().sum();
        // Rank mass leaks only through sinks; with this generator most
        // vertices have out-edges, so mass stays near 1.
        assert!((0.5..=1.01).contains(&total), "regs {regs}: mass {total}");
    }
}

#[test]
fn degree_aware_scheduling_helps_low_degree_graphs_most() {
    // A graph of only degree-2 vertices: the worst case for single-vertex
    // dispatch.
    let mut list = EdgeList::new(2000);
    for v in 0..2000u32 {
        list.push(scalagraph_suite::graph::Edge::new(v, (v + 1) % 2000));
        list.push(scalagraph_suite::graph::Edge::new(v, (v + 7) % 2000));
    }
    let g = Csr::from_edge_list(&list);
    let algo = PageRank::new(2);
    let mut narrow = ScalaGraphConfig::with_pes(64);
    narrow.max_scheduled_vertices = 1;
    let mut wide = ScalaGraphConfig::with_pes(64);
    wide.max_scheduled_vertices = 16;
    let slow = run_on(&algo, &g, narrow);
    let fast = run_on(&algo, &g, wide);
    assert!(
        fast.stats.cycles * 12 < slow.stats.cycles * 10,
        "16-wide must be >1.2x faster on degree-2 graph: {} vs {}",
        fast.stats.cycles,
        slow.stats.cycles
    );
}

#[test]
fn inter_phase_pipelining_is_disabled_for_pagerank_and_sliced_runs() {
    let g = pagerank_graph();
    let pr = run_on(&PageRank::new(2), &g, ScalaGraphConfig::with_pes(32));
    assert!(
        !pr.stats.inter_phase_used,
        "non-monotonic must not pipeline"
    );

    let mut sliced = ScalaGraphConfig::with_pes(32);
    sliced.spd_capacity_vertices = 100;
    let cc = run_on(&ConnectedComponents::new(), &g, sliced);
    assert!(!cc.stats.inter_phase_used, "sliced runs must not pipeline");
    assert!(cc.stats.slices > 1);
}

#[test]
fn inter_phase_pipelining_speeds_up_cc() {
    let mut list = EdgeList::new(600);
    for e in generators::uniform(600, 4000, 9) {
        list.push(e);
    }
    list.symmetrize();
    let g = Csr::from_edge_list(&list);
    let algo = ConnectedComponents::new();
    let golden = ReferenceEngine::new().run(&algo, &g);
    let mut on = ScalaGraphConfig::with_pes(64);
    on.inter_phase_pipelining = true;
    let mut off = on.clone();
    off.inter_phase_pipelining = false;
    let fast = run_on(&algo, &g, on);
    let slow = run_on(&algo, &g, off);
    assert_eq!(fast.properties, golden.properties);
    assert_eq!(slow.properties, golden.properties);
    assert!(
        fast.stats.cycles < slow.stats.cycles,
        "pipelining must save cycles: {} vs {}",
        fast.stats.cycles,
        slow.stats.cycles
    );
}

#[test]
fn wider_links_never_slow_the_machine() {
    let g = pagerank_graph();
    let algo = PageRank::new(2);
    let mut narrow = ScalaGraphConfig::with_pes(64);
    narrow.link_width = 1;
    let mut wide = ScalaGraphConfig::with_pes(64);
    wide.link_width = 8;
    let n = run_on(&algo, &g, narrow);
    let w = run_on(&algo, &g, wide);
    assert!(w.stats.cycles <= n.stats.cycles);
}

#[test]
fn every_ablation_produces_identical_bfs_results() {
    let g = Csr::from_edges(500, &generators::power_law(500, 4000, 0.9, 13));
    let root = Dataset::pick_root(&g);
    let algo = Bfs::from_root(root);
    let golden = ReferenceEngine::new().run(&algo, &g);
    let mut configs = Vec::new();
    for mapping in Mapping::ALL {
        for regs in [0usize, 16] {
            for width in [1usize, 16] {
                for pipe in [false, true] {
                    let mut cfg = ScalaGraphConfig::with_pes(32);
                    cfg.mapping = mapping;
                    cfg.aggregation_registers = regs;
                    cfg.max_scheduled_vertices = width;
                    cfg.inter_phase_pipelining = pipe;
                    configs.push(cfg);
                }
            }
        }
    }
    for cfg in configs {
        let label = format!(
            "{} regs={} width={} pipe={}",
            cfg.mapping,
            cfg.aggregation_registers,
            cfg.max_scheduled_vertices,
            cfg.inter_phase_pipelining
        );
        let sim = run_on(&algo, &g, cfg);
        assert_eq!(sim.properties, golden.properties, "{label}");
    }
}
