//! Fault injection: wedge the machine on purpose and read the watchdog's
//! diagnosis, then degrade a link gracefully and watch the run survive.
//!
//! Run with: `cargo run --release --example fault_injection`

use scalagraph_suite::algo::algorithms::Bfs;
use scalagraph_suite::algo::ReferenceEngine;
use scalagraph_suite::graph::{generators, Csr, Dataset};
use scalagraph_suite::scalagraph::{
    try_run_on, Fault, FaultKind, FaultPlan, LinkDir, ScalaGraphConfig,
};

fn main() {
    let num_vertices = 4_000;
    let edges = generators::power_law(num_vertices, 40_000, 0.8, 7);
    let graph = Csr::from_edges(num_vertices, &edges);
    let bfs = Bfs::from_root(Dataset::pick_root(&graph));

    // --- 1. A lossy, slow link: the run completes despite the faults. ---
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.fault_plan = Some(
        FaultPlan::seeded(42)
            // Every flit crossing tile 0's mid-tile south link is held 5
            // extra cycles for the first 10k cycles...
            .with(
                Fault::new(FaultKind::LinkDelay {
                    node: 7,
                    dir: LinkDir::South,
                    cycles: 5,
                })
                .window(0, 10_000),
            )
            // ...and one flit in 50 on the reverse link is dropped.
            .with(
                Fault::new(FaultKind::LinkDrop {
                    node: 8,
                    dir: LinkDir::North,
                    one_in: 50,
                })
                .window(0, 10_000),
            ),
    );
    match try_run_on(&bfs, &graph, cfg) {
        Ok(result) => {
            let golden = ReferenceEngine::new().run(&bfs, &graph);
            let wrong = result
                .properties
                .iter()
                .zip(&golden.properties)
                .filter(|(a, b)| a != b)
                .count();
            println!(
                "degraded link: finished in {} cycles, {} flits delayed, {} dropped, \
                 {wrong}/{num_vertices} vertices diverge from the reference",
                result.stats.cycles, result.stats.flits_delayed, result.stats.flits_dropped,
            );
        }
        Err(e) => println!("degraded link: {e}"),
    }

    // --- 2. Tile 0's HBM stack dies mid-run: the watchdog diagnoses it. ---
    // (A single pinned pseudo-channel is skipped by the round-robin
    // prefetchers and only degrades bandwidth; pinning the whole stack
    // deterministically wedges the tile.)
    let mut cfg = ScalaGraphConfig::with_pes(32);
    cfg.watchdog_stall_cycles = 5_000;
    let mut plan = FaultPlan::seeded(42);
    for channel in 0..16 {
        plan = plan.with(
            Fault::new(FaultKind::HbmStall {
                tile: 0,
                channel,
                cycles: u64::MAX, // pinned forever
            })
            .window(100, 101),
        );
    }
    cfg.fault_plan = Some(plan);
    match try_run_on(&bfs, &graph, cfg) {
        Ok(_) => unreachable!("a dead HBM stack must wedge the run"),
        Err(e) => {
            println!("\ndead HBM stack: {e}");
            if let Some(snapshot) = e.snapshot() {
                println!("--- watchdog snapshot ---\n{snapshot}");
            }
        }
    }
}
