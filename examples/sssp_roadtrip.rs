//! Single-source shortest paths on a weighted grid "road network" — a
//! bounded-degree, high-diameter graph, the opposite regime from social
//! networks. Shows the accelerator handling long frontier chains and the
//! inter-phase pipelining paying off on a monotonic algorithm.
//!
//! Run with: `cargo run --release --example sssp_roadtrip`

use scalagraph_suite::algo::algorithms::Sssp;
use scalagraph_suite::algo::ReferenceEngine;
use scalagraph_suite::graph::{generators, Csr, EdgeList};
use scalagraph_suite::scalagraph::{ScalaGraphConfig, Simulator};

fn main() {
    // A 100x100 street grid with random block lengths, plus a few highway
    // shortcuts.
    let (rows, cols) = (100usize, 100usize);
    let mut list = EdgeList::new(rows * cols);
    for e in generators::grid(rows, cols) {
        list.push(e);
    }
    // Highways: long-range edges every 10th diagonal crossing.
    for i in 0..9u32 {
        let a = i * 10 * cols as u32 + i * 10;
        let b = (i + 1) * 10 * cols as u32 + (i + 1) * 10;
        list.push(scalagraph_suite::graph::Edge::new(a, b));
    }
    list.symmetrize();
    list.randomize_weights(255, 9);
    let graph = Csr::from_edge_list(&list);

    let sssp = Sssp::from_root(0);
    println!(
        "SSSP over a {rows}x{cols} weighted grid: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    for pipelined in [false, true] {
        let mut config = ScalaGraphConfig::with_pes(128);
        config.inter_phase_pipelining = pipelined;
        let clock = config.effective_clock_mhz();
        let result = Simulator::new(&sssp, &graph, config).run();
        println!(
            "inter-phase pipelining {}: {} iterations, {} cycles ({:.1} us at {clock:.0} MHz)",
            if pipelined { "ON " } else { "OFF" },
            result.stats.iterations,
            result.stats.cycles,
            result.stats.seconds(clock) * 1e6
        );
        // Always verify against the reference.
        let golden = ReferenceEngine::new().run(&sssp, &graph);
        assert_eq!(result.properties, golden.properties);
    }

    let golden = ReferenceEngine::new().run(&sssp, &graph);
    let far = golden
        .properties
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| if d == u32::MAX { 0 } else { d })
        .unwrap();
    println!(
        "farthest reachable intersection: vertex {} at weighted distance {}",
        far.0, far.1
    );
}
