//! Design-space exploration: how each of ScalaGraph's four co-designs
//! contributes to performance on one workload — the kind of ablation a
//! user would run before committing an accelerator configuration.
//!
//! Run with: `cargo run --release --example design_space`

use scalagraph_suite::algo::algorithms::PageRank;
use scalagraph_suite::graph::Dataset;
use scalagraph_suite::scalagraph::{Mapping, ScalaGraphConfig, Simulator};

fn main() {
    let graph = Dataset::LiveJournal.generate(2048, 42);
    let algo = PageRank::new(3);
    println!(
        "Ablating ScalaGraph-512 co-designs on LiveJournal/2048 ({} edges, PageRank x3)\n",
        graph.num_edges()
    );

    let run = |name: &str, config: ScalaGraphConfig| {
        let clock = config.effective_clock_mhz();
        let r = Simulator::new(&algo, &graph, config).run();
        println!(
            "{name:<42} {:>9} cycles {:>7.2} GTEPS {:>11} NoC hops",
            r.stats.cycles,
            r.stats.gteps(clock),
            r.stats.noc_hops
        );
        r.stats.cycles
    };

    let full = run("full ScalaGraph-512", ScalaGraphConfig::scalagraph_512());

    let mut no_rom = ScalaGraphConfig::scalagraph_512();
    no_rom.mapping = Mapping::SourceOriented;
    run("- row-oriented mapping (SOM instead)", no_rom);

    let mut no_agg = ScalaGraphConfig::scalagraph_512();
    no_agg.aggregation_registers = 0;
    run("- update aggregation (FIFO routers)", no_agg);

    let mut no_sched = ScalaGraphConfig::scalagraph_512();
    no_sched.max_scheduled_vertices = 1;
    run("- degree-aware scheduling (1 vertex/cycle)", no_sched);

    let mut no_pipe = ScalaGraphConfig::scalagraph_512();
    no_pipe.inter_phase_pipelining = false;
    run("- inter-phase pipelining", no_pipe);

    let mut naive = ScalaGraphConfig::scalagraph_512();
    naive.mapping = Mapping::SourceOriented;
    naive.aggregation_registers = 0;
    naive.max_scheduled_vertices = 1;
    naive.inter_phase_pipelining = false;
    let worst = run("naive mesh (all co-designs off)", naive);

    println!(
        "\nThe co-designs together buy {:.1}x over a naive distributed design.",
        worst as f64 / full as f64
    );
}
