//! Quickstart: build a graph, run BFS on the simulated ScalaGraph
//! accelerator, and compare against the golden reference engine.
//!
//! Run with: `cargo run --release --example quickstart`

use scalagraph_suite::algo::algorithms::Bfs;
use scalagraph_suite::algo::ReferenceEngine;
use scalagraph_suite::graph::{generators, Csr, DegreeStats};
use scalagraph_suite::scalagraph::{ScalaGraphConfig, Simulator};

fn main() {
    // A 10k-vertex power-law graph, the regime graph accelerators target.
    let num_vertices = 10_000;
    let num_edges = 120_000;
    let edges = generators::power_law(num_vertices, num_edges, 0.8, 7);
    let graph = Csr::from_edges(num_vertices, &edges);
    println!("graph: {}", DegreeStats::of(&graph));

    // Root BFS at the biggest hub so the traversal covers most vertices.
    let root = scalagraph_suite::graph::Dataset::pick_root(&graph);
    let bfs = Bfs::from_root(root);

    // The paper's flagship configuration: 512 PEs, two 16x16 tiles.
    let config = ScalaGraphConfig::scalagraph_512();
    let clock_mhz = config.effective_clock_mhz();
    let result = Simulator::new(&bfs, &graph, config).run();

    println!(
        "ScalaGraph-512 @ {clock_mhz:.0} MHz: {} cycles, {:.2} GTEPS, PE utilization {:.1}%",
        result.stats.cycles,
        result.stats.gteps(clock_mhz),
        result.stats.pe_utilization() * 100.0
    );
    println!(
        "NoC: {} hops, mean routing latency {:.1} cycles, {} updates coalesced in-flight",
        result.stats.noc_hops,
        result.stats.avg_routing_latency(),
        result.stats.agg_merges
    );

    // Verify against the golden sequential engine.
    let golden = ReferenceEngine::new().run(&bfs, &graph);
    assert_eq!(
        result.properties, golden.properties,
        "accelerator must match reference"
    );
    let reached = result.properties.iter().filter(|&&l| l != u32::MAX).count();
    println!("BFS reached {reached}/{num_vertices} vertices — results verified against reference");
}
