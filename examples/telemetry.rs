//! Telemetry: run PageRank with a recording collector attached, export a
//! Chrome trace-event file (open it in <https://ui.perfetto.dev> or
//! chrome://tracing), a per-window CSV, and a mesh-link utilization
//! heatmap, then print the telemetry summary.
//!
//! Run with: `cargo run --release --example telemetry`

use scalagraph_suite::algo::algorithms::PageRank;
use scalagraph_suite::graph::{generators, Csr};
use scalagraph_suite::scalagraph::{ScalaGraphConfig, Simulator};
use scalagraph_suite::telemetry::Recorder;

fn main() {
    // A 20k-vertex power-law graph keeps the run short but long enough to
    // span many sampling windows.
    let num_vertices = 20_000;
    let edges = generators::power_law(num_vertices, 160_000, 0.8, 7);
    let graph = Csr::from_edges(num_vertices, &edges);

    let pagerank = PageRank::new(5);
    let config = ScalaGraphConfig::with_pes(128);
    let clock_mhz = config.effective_clock_mhz();

    // A recorder samples every tile, HBM pseudo-channel, and mesh link on
    // 500-cycle window boundaries; the run itself is bit-identical to one
    // without it.
    let mut recorder = Recorder::new(500);
    let result = match Simulator::try_new(&pagerank, &graph, config)
        .and_then(|mut sim| sim.try_run_with(&mut recorder))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "PageRank(5) on |V|={} |E|={}: {} cycles @ {clock_mhz:.0} MHz, {:.2} GTEPS",
        graph.num_vertices(),
        graph.num_edges(),
        result.stats.cycles,
        result.stats.gteps(clock_mhz),
    );

    let dir = std::path::Path::new("out/telemetry");
    let trace = dir.join("pagerank.trace.json");
    let csv = dir.join("pagerank.windows.csv");
    let heatmap = dir.join("pagerank.heatmap.json");
    for (what, res) in [
        ("chrome trace", recorder.export_chrome_trace(&trace)),
        ("window CSV", recorder.export_windows_csv(&csv)),
        ("link heatmap", recorder.export_link_heatmap(&heatmap)),
    ] {
        if let Err(e) = res {
            eprintln!("could not write {what}: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "wrote {}, {}, {}",
        trace.display(),
        csv.display(),
        heatmap.display()
    );
    println!("open the trace in https://ui.perfetto.dev to see the phase timeline\n");

    println!("{}", recorder.summary());
}
