//! PageRank on the paper's dataset stand-ins, sweeping the accelerator
//! size — the workload the paper uses to characterize maximal throughput
//! ("all edges are processed in each iteration").
//!
//! Run with: `cargo run --release --example pagerank_sweep`

use scalagraph_suite::algo::algorithms::PageRank;
use scalagraph_suite::graph::Dataset;
use scalagraph_suite::scalagraph::{ScalaGraphConfig, Simulator};

fn main() {
    let scale = 2048; // 1/2048 of paper-scale datasets keeps this example quick
    let algo = PageRank::new(3);

    println!("PageRank(3 iterations) throughput in GTEPS, graphs at 1/{scale} paper scale\n");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}",
        "graph", "32 PEs", "128 PEs", "512 PEs", "speedup"
    );
    for dataset in [Dataset::Pokec, Dataset::LiveJournal, Dataset::Orkut] {
        let graph = dataset.generate(scale, 42);
        let mut row = Vec::new();
        for pes in [32usize, 128, 512] {
            let config = ScalaGraphConfig::with_pes(pes);
            let clock = config.effective_clock_mhz();
            let result = Simulator::new(&algo, &graph, config).run();
            row.push(result.stats.gteps(clock));
        }
        println!(
            "{:<6} {:>10.2} {:>10.2} {:>10.2} {:>9.1}x",
            dataset.to_string(),
            row[0],
            row[1],
            row[2],
            row[2] / row[0]
        );
    }
    println!("\nNear-linear scaling from 32 to 512 PEs is the paper's headline result.");
}
