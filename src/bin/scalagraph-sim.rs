//! `scalagraph-sim` — command-line driver for the ScalaGraph simulator.
//!
//! Runs one of the paper's algorithms on a dataset stand-in, a SNAP-format
//! edge-list file, or a binary CSR, on a configurable accelerator, and
//! prints the performance counters.
//!
//! ```text
//! scalagraph-sim fuzz [--budget <n>] [--seed <n>] [--out <dir>]
//!   differential fuzz campaign over random conformance scenarios;
//!   deterministic per (budget, seed). Minimized repros are written to
//!   --out as corpus-ready JSON. Exits non-zero if any scenario diverges.
//!
//! scalagraph-sim replay [--packed] <scenario.json> [...]
//!   replay checked-in conformance scenarios through the differential
//!   oracle and print each report. Exits non-zero on any mismatch.
//!   --packed  additionally round-trip each scenario's graph through the
//!             packed on-disk container and assert the replayed report is
//!             bit-identical to the in-memory run.
//!
//! scalagraph-sim graph pack --graph <PK|LJ|OR|RM|TW|FL> --out <path>
//!                           [--scale <n>] [--seed <n>] [--weighted]
//!                           [--block-size <n>]
//!   generate a dataset stand-in (in parallel) and write it as a packed
//!   delta+varint CSR container; prints the raw/packed sizes and ratio.
//!
//! scalagraph-sim graph info <path>
//!   print the header of a packed CSR container.
//!
//! scalagraph-sim batch [options] <scenario.json | dir> [...]
//!   run conformance scenarios through the resilient batch runtime
//!   (directories expand to their *.json files, sorted). Prints one
//!   outcome record per job plus the runtime ledger. Exits 0 when the
//!   ledger balances, 1 on an unbalanced ledger or --strict violation,
//!   2 on usage errors.
//!   --workers <n>             worker threads                    [4]
//!   --queue-cap <n>           admission queue capacity          [256]
//!   --deadline-ms <ms>        per-job wall-clock deadline       [none]
//!   --global-deadline-ms <ms> whole-batch wall-clock ceiling    [none]
//!   --retries <n>             max attempts per job              [3]
//!   --breaker <n>             breaker threshold, 0 disables     [3]
//!   --max-cycles <n>          per-job simulated-cycle budget    [none]
//!   --max-graph-bytes <n>     per-job graph-memory budget       [none]
//!   --graph-cache-bytes <n>   shared graph-cache byte budget    [unbounded]
//!   --inject-panic <name>     panic the worker on this scenario (test hook)
//!   --strict                  exit 1 unless every job completed
//!
//! scalagraph-sim [options]
//!   --algo <bfs|sssp|cc|pagerank>   algorithm            [bfs]
//!   --graph <PK|LJ|OR|RM|TW|FL>     dataset stand-in     [PK]
//!   --file <path>                   edge-list file instead of a stand-in
//!   --csr <path>                    binary CSR file instead of a stand-in
//!   --scale <divisor>               stand-in down-scale  [2048]
//!   --pes <n>                       PE count (multiple of 32) [512]
//!   --mapping <som|dom|rom>         workload mapping     [rom]
//!   --agg <n>                       aggregation registers [16]
//!   --sched <n>                     degree-aware width 1..=16 [16]
//!   --no-pipeline                   disable inter-phase pipelining
//!   --iters <n>                     PageRank iterations  [5]
//!   --seed <n>                      generator seed       [42]
//!   --watchdog <cycles>             stall watchdog threshold, 0 disables [25000]
//!   --threads <n>                   worker threads for parallel sweeps
//!                                   (sets SCALAGRAPH_THREADS) [all cores]
//!   --fast-forward                  skip quiescent cycles in bulk [on]
//!   --no-fast-forward               step every cycle individually
//!   --event-driven                  step only units with scheduled work
//!                                   (implies --fast-forward)
//!   --baseline                      also run the GraphDynS-128 baseline
//!   --metrics-window <cycles>       telemetry sampling window [1000]
//!   --trace-out <path>              write a Chrome trace-event JSON
//!                                   (open in ui.perfetto.dev or chrome://tracing)
//!   --metrics-csv <path>            write per-window time-series CSV
//!   --heatmap-out <path>            write mesh-link utilization heatmap JSON
//! ```
//!
//! Passing any of the four telemetry flags attaches a recorder to the run
//! (results are bit-identical either way) and prints a telemetry summary
//! after the counters. Invalid configurations and wedged runs exit with a
//! structured error (and, for stalls, the watchdog's diagnostic snapshot)
//! instead of a panic backtrace; requested trace files are still written
//! so the timeline of a wedged run can be inspected.

use scalagraph_suite::algo::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
use scalagraph_suite::algo::Algorithm;
use scalagraph_suite::baselines::{GraphDyns, GraphDynsConfig};
use scalagraph_suite::conformance::{self, GraphSource, Scenario};
use scalagraph_suite::graph::{io, packed, Csr, Dataset, EdgeList, PackedCsr};
use scalagraph_suite::runtime::{BatchRuntime, GraphCache, JobSpec, JobStatus, RuntimeConfig};
use scalagraph_suite::scalagraph::{Mapping, ScalaGraphConfig, SimResult, Simulator};
use scalagraph_suite::telemetry::Recorder;
use std::collections::HashMap;
use std::process::exit;
use std::sync::Arc;

/// Flags that take no value.
const SWITCHES: &[&str] = &[
    "no-pipeline",
    "baseline",
    "fast-forward",
    "no-fast-forward",
    "event-driven",
];
/// Flags that take a value.
const OPTIONS: &[&str] = &[
    "algo",
    "graph",
    "file",
    "csr",
    "scale",
    "pes",
    "mapping",
    "agg",
    "sched",
    "iters",
    "seed",
    "watchdog",
    "threads",
    "metrics-window",
    "trace-out",
    "metrics-csv",
    "heatmap-out",
];

fn usage_and_exit(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    eprintln!(
        "{}",
        include_str!("scalagraph-sim.rs")
            .lines()
            .skip(2)
            .take_while(|l| l.starts_with("//!"))
            .map(|l| l.trim_start_matches("//! ").trim_start_matches("//!"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    exit(2)
}

fn parse_args() -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let key = match a.strip_prefix("--") {
            Some(k) => k.to_string(),
            None => usage_and_exit(&format!("unexpected argument `{a}`")),
        };
        if SWITCHES.contains(&key.as_str()) {
            map.insert(key, "true".into());
        } else if OPTIONS.contains(&key.as_str()) {
            let v = args
                .next()
                .unwrap_or_else(|| usage_and_exit(&format!("--{key} needs a value")));
            map.insert(key, v);
        } else {
            usage_and_exit(&format!("unknown flag `--{key}`"));
        }
    }
    map
}

fn load_graph(args: &HashMap<String, String>, weighted: bool, symmetric: bool) -> Csr {
    let seed: u64 = args.get("seed").map_or(42, |s| s.parse().unwrap_or(42));
    let scale: u64 = args
        .get("scale")
        .map_or(2048, |s| s.parse().unwrap_or(2048));
    let mut list: EdgeList = if let Some(path) = args.get("csr") {
        let g = io::read_csr_binary(path).unwrap_or_else(|e| usage_and_exit(&format!("{e}")));
        if !weighted && !symmetric {
            return g;
        }
        let mut l = EdgeList::new(g.num_vertices());
        for e in g.edges() {
            l.push(e);
        }
        l
    } else if let Some(path) = args.get("file") {
        io::read_edge_list(path, None).unwrap_or_else(|e| usage_and_exit(&format!("{e}")))
    } else {
        let name = args.get("graph").map(String::as_str).unwrap_or("PK");
        let dataset = Dataset::ALL
            .iter()
            .find(|d| d.spec().abbrev.eq_ignore_ascii_case(name))
            .copied()
            .unwrap_or_else(|| usage_and_exit(&format!("unknown dataset `{name}`")));
        dataset.edge_list(scale, seed)
    };
    if symmetric {
        list.symmetrize();
    }
    if weighted {
        list.randomize_weights(255, seed.wrapping_add(1));
    }
    Csr::from_edge_list(&list)
}

fn build_config(args: &HashMap<String, String>) -> ScalaGraphConfig {
    let pes: usize = args.get("pes").map_or(512, |s| s.parse().unwrap_or(512));
    let mut cfg = ScalaGraphConfig::with_pes(pes);
    if let Some(m) = args.get("mapping") {
        cfg.mapping = match m.to_ascii_lowercase().as_str() {
            "som" => Mapping::SourceOriented,
            "dom" => Mapping::DestinationOriented,
            "rom" => Mapping::RowOriented,
            other => usage_and_exit(&format!("unknown mapping `{other}`")),
        };
    }
    if let Some(a) = args.get("agg") {
        cfg.aggregation_registers = a.parse().unwrap_or(16);
    }
    if let Some(s) = args.get("sched") {
        cfg.max_scheduled_vertices = s.parse().unwrap_or(16);
    }
    if args.contains_key("no-pipeline") {
        cfg.inter_phase_pipelining = false;
    }
    if let Some(w) = args.get("watchdog") {
        cfg.watchdog_stall_cycles = w.parse().unwrap_or_else(|_| {
            usage_and_exit(&format!("--watchdog needs a cycle count, got `{w}`"))
        });
    }
    // Fast-forward is on by default; results are bit-identical either way,
    // so --no-fast-forward exists for A/B timing, not correctness.
    cfg.fast_forward = !args.contains_key("no-fast-forward");
    // Event-driven stepping subsumes the whole-device jump, so it needs
    // fast-forward enabled — validate() rejects the combination otherwise.
    cfg.event_driven = args.contains_key("event-driven");
    cfg
}

fn report<P>(label: &str, result: &SimResult<P>, clock_mhz: f64) {
    let s = result.stats;
    println!("\n[{label}] @ {clock_mhz:.0} MHz");
    println!("  iterations        : {}", s.iterations);
    println!("  cycles            : {}", s.cycles);
    println!("  time              : {:.3} ms", s.seconds(clock_mhz) * 1e3);
    println!("  traversed edges   : {}", s.traversed_edges);
    println!("  throughput        : {:.3} GTEPS", s.gteps(clock_mhz));
    println!("  PE utilization    : {:.1}%", s.pe_utilization() * 100.0);
    println!("  NoC hops          : {}", s.noc_hops);
    println!(
        "  routing latency   : {:.1} cycles",
        s.avg_routing_latency()
    );
    println!("  aggregation merges: {}", s.agg_merges);
    println!(
        "  off-chip traffic  : {:.2} MB",
        s.offchip_bytes() as f64 / 1e6
    );
    println!("  slices            : {}", s.slices);
    println!("  pipelining engaged: {}", s.inter_phase_used);
}

/// Telemetry options distilled from the command line; `None` when no
/// telemetry flag was passed (the run then uses the zero-cost null
/// collector).
struct TelemetryOpts {
    window: u64,
    trace_out: Option<String>,
    csv_out: Option<String>,
    heatmap_out: Option<String>,
}

fn telemetry_opts(args: &HashMap<String, String>) -> Option<TelemetryOpts> {
    let wanted = ["metrics-window", "trace-out", "metrics-csv", "heatmap-out"]
        .iter()
        .any(|k| args.contains_key(*k));
    if !wanted {
        return None;
    }
    let window = args.get("metrics-window").map_or(1000, |s| {
        s.parse().unwrap_or_else(|_| {
            usage_and_exit(&format!("--metrics-window needs a cycle count, got `{s}`"))
        })
    });
    if window == 0 {
        usage_and_exit("--metrics-window must be at least 1 cycle");
    }
    Some(TelemetryOpts {
        window,
        trace_out: args.get("trace-out").cloned(),
        csv_out: args.get("metrics-csv").cloned(),
        heatmap_out: args.get("heatmap-out").cloned(),
    })
}

/// Writes the requested export files. Called on success and on failure
/// alike — a timeline of a wedged run is exactly when you want the trace.
fn write_exports(opts: &TelemetryOpts, rec: &Recorder) {
    fn emit(what: &str, path: &Option<String>, write: impl Fn(&str) -> std::io::Result<()>) {
        if let Some(path) = path {
            match write(path) {
                Ok(()) => println!("  wrote {what} to {path}"),
                Err(e) => eprintln!("warning: could not write {what} to {path}: {e}"),
            }
        }
    }
    emit("chrome trace", &opts.trace_out, |p| {
        rec.export_chrome_trace(p)
    });
    emit("window CSV", &opts.csv_out, |p| rec.export_windows_csv(p));
    emit("link heatmap", &opts.heatmap_out, |p| {
        rec.export_link_heatmap(p)
    });
}

fn run_all<A: Algorithm>(algo: &A, graph: &Csr, args: &HashMap<String, String>) {
    let cfg = build_config(args);
    let clock = cfg.effective_clock_mhz();
    let pes = cfg.placement.num_pes();
    let tel = telemetry_opts(args);
    let mut recorder = tel.as_ref().map(|t| Recorder::new(t.window));
    let outcome =
        Simulator::try_new(algo, graph, cfg).and_then(|mut sim| match recorder.as_mut() {
            Some(rec) => sim.try_run_with(rec),
            None => sim.try_run(),
        });
    if let (Some(t), Some(rec)) = (&tel, &recorder) {
        write_exports(t, rec);
    }
    let result = outcome.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        if let Some(snapshot) = e.snapshot() {
            eprintln!("\n{snapshot}");
        }
        exit(1)
    });
    report(&format!("ScalaGraph-{pes} {}", algo.name()), &result, clock);
    if let Some(rec) = &recorder {
        println!("\n{}", rec.summary());
    }
    if args.contains_key("baseline") {
        let gd_cfg = GraphDynsConfig::graphdyns_128();
        let gd_clock = gd_cfg.effective_clock_mhz();
        let gd = GraphDyns::new(gd_cfg).run(algo, graph);
        report(&format!("GraphDynS-128 {}", algo.name()), &gd, gd_clock);
    }
}

/// `scalagraph-sim fuzz`: a deterministic differential fuzz campaign.
fn cmd_fuzz(rest: &[String]) -> ! {
    let mut budget = 100usize;
    let mut seed = 42u64;
    let mut out_dir: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| usage_and_exit(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--budget" => {
                budget = value("--budget")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--budget needs a non-negative integer"))
            }
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--seed needs an integer"))
            }
            "--out" => out_dir = Some(value("--out")),
            other => usage_and_exit(&format!("unknown fuzz flag `{other}`")),
        }
    }
    let report = conformance::fuzz(budget, seed);
    print!("{}", report.render());
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: could not create {dir}: {e}");
            exit(2);
        }
        for f in &report.failures {
            let path = format!("{dir}/{}.json", f.minimized.name);
            match std::fs::write(&path, f.minimized.to_json_string()) {
                Ok(()) => println!("wrote minimized repro to {path}"),
                Err(e) => eprintln!("warning: could not write {path}: {e}"),
            }
        }
    }
    exit(if report.failures.is_empty() && report.rejected == 0 {
        0
    } else {
        1
    })
}

/// `scalagraph-sim replay`: replay conformance scenarios from JSON files.
fn cmd_replay(rest: &[String]) -> ! {
    let mut packed_check = false;
    let mut paths: Vec<&String> = Vec::new();
    for a in rest {
        match a.as_str() {
            "--packed" => packed_check = true,
            other if other.starts_with("--") => {
                usage_and_exit(&format!("unknown replay flag `{other}`"))
            }
            _ => paths.push(a),
        }
    }
    if paths.is_empty() {
        usage_and_exit("replay needs at least one scenario file");
    }
    let mut failed = false;
    for path in paths {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: could not read {path}: {e}");
            exit(2)
        });
        let scenario = Scenario::from_json_str(&text).unwrap_or_else(|e| {
            eprintln!("error: {path} is not a valid scenario: {e}");
            exit(2)
        });
        if let Some(m) = scenario.mutations {
            println!(
                "dynamic: {} mutation batch(es) (+{}e -{}e +{}v iso {}v per batch, seed {}); \
                 every batch checked incremental vs full recompute",
                m.batches,
                m.insert_edges,
                m.remove_edges,
                m.add_vertices,
                m.isolate_vertices,
                m.seed
            );
        }
        match conformance::run_scenario(&scenario) {
            Ok(report) => {
                print!("{}", report.render());
                failed |= !report.passed();
                if packed_check {
                    match replay_on_packed_backing(&scenario, &report.render()) {
                        Ok(()) => println!("packed backing: bit-identical report"),
                        Err(e) => {
                            eprintln!("error: packed replay of `{}`: {e}", scenario.name);
                            failed = true;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("error: scenario `{}` is malformed: {e}", scenario.name);
                failed = true;
            }
        }
    }
    exit(if failed { 1 } else { 0 })
}

/// Re-runs `scenario` with its graph packed to a temporary on-disk
/// container and loaded back through the mmap reader, asserting the
/// replayed report is byte-identical to `baseline`.
fn replay_on_packed_backing(scenario: &Scenario, baseline: &str) -> Result<(), String> {
    let graph = scenario.graph.build()?;
    let tmp = std::env::temp_dir().join(format!(
        "scalagraph-replay-{}-{}.sgpk",
        std::process::id(),
        scenario.name
    ));
    packed::write_packed(&graph, &tmp, packed::DEFAULT_BLOCK_SIZE).map_err(|e| e.to_string())?;
    let mut on_packed = scenario.clone();
    on_packed.graph.source = GraphSource::PackedFile {
        path: tmp.to_string_lossy().into_owned(),
    };
    let outcome = conformance::run_scenario(&on_packed);
    let _ = std::fs::remove_file(&tmp);
    let report = outcome.map_err(|e| e.to_string())?;
    if report.render() != baseline {
        return Err("report diverged from the in-memory backing".into());
    }
    Ok(())
}

/// `scalagraph-sim graph`: pack datasets into the on-disk container and
/// inspect existing containers.
fn cmd_graph(rest: &[String]) -> ! {
    match rest.first().map(String::as_str) {
        Some("pack") => cmd_graph_pack(&rest[1..]),
        Some("info") => cmd_graph_info(&rest[1..]),
        _ => usage_and_exit("graph needs a verb: pack | info"),
    }
}

fn cmd_graph_pack(rest: &[String]) -> ! {
    let mut name: Option<String> = None;
    let mut out: Option<String> = None;
    let mut scale = 2048u64;
    let mut seed = 42u64;
    let mut weighted = false;
    let mut block_size = packed::DEFAULT_BLOCK_SIZE;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| usage_and_exit(&format!("{flag} needs a value")))
        };
        let parse_u64 = |flag: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| usage_and_exit(&format!("{flag} needs a non-negative integer")))
        };
        match a.as_str() {
            "--graph" => name = Some(value("--graph")),
            "--out" => out = Some(value("--out")),
            "--scale" => scale = parse_u64("--scale", value("--scale")),
            "--seed" => seed = parse_u64("--seed", value("--seed")),
            "--weighted" => weighted = true,
            "--block-size" => {
                block_size = parse_u64("--block-size", value("--block-size")).max(1) as u32
            }
            other => usage_and_exit(&format!("unknown graph pack flag `{other}`")),
        }
    }
    let name = name.unwrap_or_else(|| usage_and_exit("graph pack needs --graph <abbrev>"));
    let out = out.unwrap_or_else(|| usage_and_exit("graph pack needs --out <path>"));
    let dataset = Dataset::ALL
        .iter()
        .find(|d| d.spec().abbrev.eq_ignore_ascii_case(&name))
        .copied()
        .unwrap_or_else(|| usage_and_exit(&format!("unknown dataset `{name}`")));
    let graph = if weighted {
        dataset.try_generate_weighted(scale, seed)
    } else {
        dataset.try_generate(scale, seed)
    }
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(2)
    });
    let raw = graph.storage_bytes();
    let written = packed::write_packed(&graph, &out, block_size).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1)
    });
    println!(
        "packed {dataset} scale {scale} seed {seed}: |V|={} |E|={}{}",
        graph.num_vertices(),
        graph.num_edges(),
        if weighted { " (weighted)" } else { "" }
    );
    println!(
        "  raw CSR {raw} B -> packed {written} B ({:.1}% , {:.2} B/edge) -> {out}",
        written as f64 / raw as f64 * 100.0,
        written as f64 / graph.num_edges().max(1) as f64
    );
    exit(0)
}

fn cmd_graph_info(rest: &[String]) -> ! {
    let [path] = rest else {
        usage_and_exit("graph info needs exactly one container path");
    };
    let g = PackedCsr::open(path).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1)
    });
    println!("packed CSR container {path}");
    println!("  vertices     : {}", g.num_vertices());
    println!("  edges        : {}", g.num_edges());
    println!("  weighted     : {}", g.is_weighted());
    println!("  block size   : {}", g.block_size());
    println!("  blocks       : {}", g.num_blocks());
    println!("  container    : {} B", g.container_bytes());
    println!(
        "  bytes/edge   : {:.2}",
        g.container_bytes() as f64 / g.num_edges().max(1) as f64
    );
    exit(0)
}

/// `scalagraph-sim batch`: run scenarios through the resilient batch
/// runtime.
fn cmd_batch(rest: &[String]) -> ! {
    let mut config = RuntimeConfig::default();
    let mut strict = false;
    let mut graph_cache_bytes: Option<u64> = None;
    let mut inject_panic: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| usage_and_exit(&format!("{flag} needs a value")))
        };
        let parse_u64 = |flag: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| usage_and_exit(&format!("{flag} needs a non-negative integer")))
        };
        match a.as_str() {
            "--workers" => {
                config.workers = parse_u64("--workers", value("--workers")).max(1) as usize
            }
            "--queue-cap" => {
                config.queue_capacity =
                    parse_u64("--queue-cap", value("--queue-cap")).max(1) as usize
            }
            "--deadline-ms" => {
                config.default_deadline = Some(std::time::Duration::from_millis(parse_u64(
                    "--deadline-ms",
                    value("--deadline-ms"),
                )))
            }
            "--global-deadline-ms" => {
                config.global_deadline = Some(std::time::Duration::from_millis(parse_u64(
                    "--global-deadline-ms",
                    value("--global-deadline-ms"),
                )))
            }
            "--retries" => {
                config.retry.max_attempts = parse_u64("--retries", value("--retries")).max(1) as u32
            }
            "--breaker" => {
                config.breaker_threshold = parse_u64("--breaker", value("--breaker")) as u32
            }
            "--max-cycles" => {
                config.budgets.max_cycles = Some(parse_u64("--max-cycles", value("--max-cycles")))
            }
            "--max-graph-bytes" => {
                config.budgets.max_graph_bytes =
                    Some(parse_u64("--max-graph-bytes", value("--max-graph-bytes")))
            }
            "--graph-cache-bytes" => {
                graph_cache_bytes =
                    Some(parse_u64("--graph-cache-bytes", value("--graph-cache-bytes")).max(1))
            }
            "--inject-panic" => inject_panic = Some(value("--inject-panic")),
            "--strict" => strict = true,
            other if other.starts_with("--") => {
                usage_and_exit(&format!("unknown batch flag `{other}`"))
            }
            path => inputs.push(path.to_string()),
        }
    }
    if inputs.is_empty() {
        usage_and_exit("batch needs at least one scenario file or directory");
    }

    // Expand directories to their sorted *.json files.
    let mut paths: Vec<String> = Vec::new();
    for input in &inputs {
        if std::fs::metadata(input)
            .map(|m| m.is_dir())
            .unwrap_or(false)
        {
            let mut found: Vec<String> = std::fs::read_dir(input)
                .map(|entries| {
                    entries
                        .filter_map(Result::ok)
                        .map(|e| e.path().to_string_lossy().into_owned())
                        .filter(|p| p.ends_with(".json"))
                        .collect()
                })
                .unwrap_or_else(|e| {
                    eprintln!("error: could not read directory {input}: {e}");
                    exit(2)
                });
            found.sort();
            if found.is_empty() {
                eprintln!("error: directory {input} contains no .json scenarios");
                exit(2);
            }
            paths.extend(found);
        } else {
            paths.push(input.clone());
        }
    }

    let specs: Vec<JobSpec> = paths
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: could not read {path}: {e}");
                exit(2)
            });
            let scenario = Scenario::from_json_str(&text).unwrap_or_else(|e| {
                eprintln!("error: {path} is not a valid scenario: {e}");
                exit(2)
            });
            let mut spec = JobSpec::new(scenario);
            if inject_panic.as_deref() == Some(spec.scenario.name.as_str()) {
                spec.inject_panic = true;
            }
            spec
        })
        .collect();

    println!(
        "batch: {} jobs, {} workers, queue capacity {}",
        specs.len(),
        config.workers,
        config.queue_capacity
    );
    let runtime = match graph_cache_bytes {
        Some(bytes) => BatchRuntime::with_graph_cache(
            config,
            Arc::new(GraphCache::with_byte_budget(64, bytes)),
        ),
        None => BatchRuntime::new(config),
    };
    let report = runtime.run(specs);
    for outcome in &report.outcomes {
        println!("{outcome}");
    }
    println!("\n{}", report.render());
    let cache = runtime.graph_cache().stats();
    println!(
        "graph cache: {} builds, {} hits / {} fetches, {} evictions, ~{} KiB resident",
        cache.builds,
        cache.hits,
        cache.hits + cache.misses,
        cache.evictions,
        cache.resident_bytes / 1024
    );

    let balanced = report.balanced();
    let leak_free = report.workers_joined == report.workers_spawned;
    if !balanced {
        eprintln!("error: ledger is unbalanced");
    }
    if !leak_free {
        eprintln!("error: worker threads leaked");
    }
    let strict_ok = !strict
        || report
            .outcomes
            .iter()
            .all(|o| matches!(o.status, JobStatus::Completed { .. }));
    if strict && !strict_ok {
        eprintln!("error: --strict set and not every job completed");
    }
    exit(if balanced && leak_free && strict_ok {
        0
    } else {
        1
    })
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("fuzz") => cmd_fuzz(&raw[1..]),
        Some("replay") => cmd_replay(&raw[1..]),
        Some("batch") => cmd_batch(&raw[1..]),
        Some("graph") => cmd_graph(&raw[1..]),
        _ => {}
    }
    let args = parse_args();
    if args.contains_key("fast-forward") && args.contains_key("no-fast-forward") {
        usage_and_exit("--fast-forward and --no-fast-forward are mutually exclusive");
    }
    if args.contains_key("event-driven") && args.contains_key("no-fast-forward") {
        usage_and_exit("--event-driven requires fast-forward; drop --no-fast-forward");
    }
    if let Some(t) = args.get("threads") {
        match t.parse::<usize>() {
            Ok(n) if n > 0 => std::env::set_var("SCALAGRAPH_THREADS", n.to_string()),
            _ => usage_and_exit(&format!("--threads needs a positive integer, got `{t}`")),
        }
    }
    let algo_name = args.get("algo").map(String::as_str).unwrap_or("bfs");
    let iters: usize = args.get("iters").map_or(5, |s| s.parse().unwrap_or(5));

    match algo_name.to_ascii_lowercase().as_str() {
        "bfs" => {
            let graph = load_graph(&args, false, false);
            let root = Dataset::pick_root(&graph);
            println!(
                "BFS from hub {root} on |V|={} |E|={}",
                graph.num_vertices(),
                graph.num_edges()
            );
            run_all(&Bfs::from_root(root), &graph, &args);
        }
        "sssp" => {
            let graph = load_graph(&args, true, false);
            let root = Dataset::pick_root(&graph);
            println!(
                "SSSP from hub {root} on |V|={} |E|={}",
                graph.num_vertices(),
                graph.num_edges()
            );
            run_all(&Sssp::from_root(root), &graph, &args);
        }
        "cc" => {
            let graph = load_graph(&args, false, true);
            println!(
                "CC on symmetrized |V|={} |E|={}",
                graph.num_vertices(),
                graph.num_edges()
            );
            run_all(&ConnectedComponents::new(), &graph, &args);
        }
        "pagerank" | "pr" => {
            let graph = load_graph(&args, false, false);
            println!(
                "PageRank({iters}) on |V|={} |E|={}",
                graph.num_vertices(),
                graph.num_edges()
            );
            run_all(&PageRank::new(iters), &graph, &args);
        }
        other => usage_and_exit(&format!("unknown algorithm `{other}`")),
    }
}
