//! Umbrella crate for the ScalaGraph reproduction workspace.
//!
//! This crate exists to host the repository-level [examples](https://github.com/scalagraph)
//! and cross-crate integration tests. All functionality lives in the member
//! crates re-exported below.

pub use scalagraph;
pub use scalagraph_algo as algo;
pub use scalagraph_baselines as baselines;
pub use scalagraph_conformance as conformance;
pub use scalagraph_graph as graph;
pub use scalagraph_hwmodel as hwmodel;
pub use scalagraph_mem as mem;
pub use scalagraph_noc as noc;
pub use scalagraph_runtime as runtime;
pub use scalagraph_serve as serve;
pub use scalagraph_telemetry as telemetry;
